"""Tests for BFS, h-neighborhoods, distances and components (vs networkx oracles)."""

import networkx as nx
import pytest

from repro.errors import InvalidDistanceThresholdError, GraphError, VertexNotFoundError
from repro.graph import Graph
from repro.graph.generators import cycle_graph, erdos_renyi_graph, grid_graph, path_graph
from repro.instrumentation import Counters
from repro.traversal import (
    bfs_distances,
    connected_components,
    diameter,
    double_sweep_diameter_estimate,
    eccentricity,
    h_bounded_bfs,
    h_bounded_neighbors,
    h_degree,
    h_neighborhood,
    all_h_degrees,
    is_connected,
    largest_component,
    shortest_path_distance,
    single_source_distances,
)
from repro.traversal.bfs import bfs_tree
from repro.traversal.distances import all_pairs_distances, induced_diameter_at_most
from repro.traversal.hneighborhood import h_neighbors_with_distance
from repro.traversal.components import same_component

from helpers import to_networkx


class TestBFS:
    def test_distances_match_networkx(self):
        g = erdos_renyi_graph(40, 0.1, seed=3)
        nx_g = to_networkx(g)
        for source in list(g.vertices())[:5]:
            expected = nx.single_source_shortest_path_length(nx_g, source)
            assert bfs_distances(g, source) == dict(expected)

    def test_h_bounded_bfs_truncates(self):
        g = path_graph(10)
        distances = h_bounded_bfs(g, 0, 3)
        assert set(distances) == {0, 1, 2, 3}
        assert distances[3] == 3

    def test_unbounded_when_h_none(self):
        g = path_graph(6)
        assert len(h_bounded_bfs(g, 0, None)) == 6

    def test_source_included_at_distance_zero(self):
        g = path_graph(3)
        assert h_bounded_bfs(g, 1, 1)[1] == 0

    def test_alive_restriction(self):
        g = path_graph(5)  # 0-1-2-3-4
        distances = h_bounded_bfs(g, 0, 4, alive={0, 1, 3, 4})
        # vertex 2 is dead, so 3 and 4 are unreachable
        assert set(distances) == {0, 1}

    def test_missing_source_raises(self):
        with pytest.raises(VertexNotFoundError):
            bfs_distances(Graph([(1, 2)]), 99)

    def test_source_not_alive_raises(self):
        g = path_graph(3)
        with pytest.raises(VertexNotFoundError):
            h_bounded_bfs(g, 0, 2, alive={1, 2})

    def test_counters_record_visits(self):
        g = cycle_graph(6)
        counters = Counters()
        h_bounded_bfs(g, 0, 2, counters=counters)
        assert counters.bfs_calls == 1
        assert counters.vertices_visited == 4  # two on each side of the cycle

    def test_bfs_tree_parents(self):
        g = path_graph(4)
        parents = bfs_tree(g, 0)
        assert parents[0] is None
        assert parents[1] == 0
        assert parents[3] == 2


class TestSourceExclusion:
    """Regression: the h-neighborhood excludes the source on every code path.

    The old implementation built ``{source: 0}`` into the BFS result and then
    ``del``-eted it on the hot path; :func:`h_bounded_neighbors` (and the CSR
    engine's array BFS) never materialize the source entry — but the observable
    contract must be identical either way.
    """

    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_dict_paths_exclude_source(self, h):
        g = erdos_renyi_graph(20, 0.2, seed=4)
        for v in g.vertices():
            assert v not in h_neighborhood(g, v, h)
            assert v not in h_neighbors_with_distance(g, v, h)
            assert v not in h_bounded_neighbors(g, v, h)
            # ...while the full-BFS variant keeps the source at distance 0.
            assert h_bounded_bfs(g, v, h)[v] == 0

    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_csr_engine_excludes_source(self, h):
        from repro.core.backends import CSREngine
        g = erdos_renyi_graph(20, 0.2, seed=4)
        engine = CSREngine(g)
        for handle in engine.nodes():
            assert handle not in engine.h_neighborhood(handle, h)
            assert handle not in dict(engine.h_neighbors_with_distance(handle, h))

    def test_neighbors_variant_matches_bfs_minus_source(self):
        g = grid_graph(4, 4)
        for v in g.vertices():
            full = h_bounded_bfs(g, v, 2)
            trimmed = h_bounded_neighbors(g, v, 2)
            assert trimmed == {u: d for u, d in full.items() if u != v}

    def test_isolated_vertex_has_empty_neighborhood(self):
        g = Graph()
        g.add_vertex(0)
        assert h_neighborhood(g, 0, 2) == set()
        assert h_bounded_neighbors(g, 0, 2) == {}


class TestHNeighborhood:
    def test_h1_equals_plain_neighborhood(self):
        g = erdos_renyi_graph(25, 0.15, seed=1)
        for v in g.vertices():
            assert h_neighborhood(g, v, 1) == g.neighbors(v)
            assert h_degree(g, v, 1) == g.degree(v)

    def test_matches_networkx_ego_graph(self):
        g = erdos_renyi_graph(30, 0.12, seed=2)
        nx_g = to_networkx(g)
        for v in list(g.vertices())[:8]:
            for h in (2, 3):
                ego = set(nx.ego_graph(nx_g, v, radius=h).nodes()) - {v}
                assert h_neighborhood(g, v, h) == ego

    def test_excludes_self(self):
        g = cycle_graph(5)
        assert 0 not in h_neighborhood(g, 0, 2)

    def test_invalid_h_raises(self):
        g = cycle_graph(5)
        with pytest.raises(InvalidDistanceThresholdError):
            h_neighborhood(g, 0, 0)
        with pytest.raises(InvalidDistanceThresholdError):
            h_degree(g, 0, -1)
        with pytest.raises(InvalidDistanceThresholdError):
            all_h_degrees(g, 1.5)  # type: ignore[arg-type]

    def test_neighbors_with_distance(self):
        g = path_graph(5)
        with_distance = h_neighbors_with_distance(g, 0, 2)
        assert with_distance == {1: 1, 2: 2}

    def test_all_h_degrees_subset(self):
        g = cycle_graph(8)
        degrees = all_h_degrees(g, 2, vertices=[0, 1])
        assert degrees == {0: 4, 1: 4}

    def test_alive_restriction_changes_h_degree(self):
        g = path_graph(5)  # 0-1-2-3-4
        assert h_degree(g, 0, 4) == 4
        assert h_degree(g, 0, 4, alive={0, 1, 2}) == 2


class TestDistances:
    def test_shortest_path_distance(self):
        g = path_graph(6)
        assert shortest_path_distance(g, 0, 5) == 5
        assert shortest_path_distance(g, 2, 2) == 0

    def test_unreachable_returns_none(self):
        g = Graph([(0, 1), (2, 3)])
        assert shortest_path_distance(g, 0, 3) is None

    def test_missing_target_raises(self):
        g = path_graph(3)
        with pytest.raises(VertexNotFoundError):
            shortest_path_distance(g, 0, 42)

    def test_single_source_matches_networkx(self):
        g = grid_graph(4, 5)
        nx_g = to_networkx(g)
        assert single_source_distances(g, 0) == dict(
            nx.single_source_shortest_path_length(nx_g, 0))

    def test_all_pairs_distances(self):
        g = cycle_graph(5)
        table = all_pairs_distances(g)
        assert table[0][2] == 2
        assert len(table) == 5

    def test_eccentricity_and_diameter(self):
        g = path_graph(7)
        assert eccentricity(g, 0) == 6
        assert eccentricity(g, 3) == 3
        assert diameter(g) == 6

    def test_diameter_matches_networkx(self):
        g = erdos_renyi_graph(25, 0.2, seed=7)
        nx_g = to_networkx(g)
        if nx.is_connected(nx_g):
            assert diameter(g) == nx.diameter(nx_g)

    def test_diameter_disconnected_raises(self):
        with pytest.raises(GraphError):
            diameter(Graph([(0, 1), (2, 3)]))

    def test_diameter_empty_raises(self):
        with pytest.raises(GraphError):
            diameter(Graph())

    def test_double_sweep_exact_on_paths_and_cycles(self):
        assert double_sweep_diameter_estimate(path_graph(9)) == 8
        # Double sweep is a lower bound; on a cycle it is within one of exact.
        assert double_sweep_diameter_estimate(cycle_graph(10)) >= 4

    def test_double_sweep_lower_bound(self):
        g = erdos_renyi_graph(30, 0.15, seed=9)
        nx_g = to_networkx(g)
        if nx.is_connected(nx_g):
            assert double_sweep_diameter_estimate(g) <= nx.diameter(nx_g)

    def test_induced_diameter_at_most(self):
        g = path_graph(5)
        assert induced_diameter_at_most(g, {0, 1, 2}, 2)
        assert not induced_diameter_at_most(g, {0, 1, 2, 3}, 2)
        # 0 and 2 are only connected through 1, which is excluded.
        assert not induced_diameter_at_most(g, {0, 2}, 2)
        assert induced_diameter_at_most(g, set(), 1)


class TestComponents:
    def test_connected_components(self):
        g = Graph([(0, 1), (1, 2), (5, 6)])
        g.add_vertex(9)
        components = connected_components(g)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2, 3]

    def test_is_connected(self):
        assert is_connected(path_graph(4))
        assert not is_connected(Graph([(0, 1), (2, 3)]))
        assert is_connected(Graph())

    def test_largest_component(self):
        g = Graph([(0, 1), (1, 2), (5, 6)])
        assert largest_component(g) == {0, 1, 2}
        assert largest_component(Graph()) == set()

    def test_alive_restriction(self):
        g = path_graph(5)
        components = connected_components(g, alive={0, 1, 3, 4})
        assert sorted(len(c) for c in components) == [2, 2]

    def test_same_component(self):
        g = Graph([(0, 1), (2, 3)])
        assert same_component(g, {0, 1})
        assert not same_component(g, {0, 2})
        assert same_component(g, set())

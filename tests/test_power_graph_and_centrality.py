"""Tests for the h-power graph and the centrality measures (vs networkx)."""

import networkx as nx
import pytest

from repro.errors import InvalidDistanceThresholdError
from repro.graph.generators import cycle_graph, erdos_renyi_graph, path_graph, star_graph
from repro.traversal import betweenness_centrality, closeness_centrality, power_graph
from repro.traversal.centrality import top_k_by_centrality

from helpers import to_networkx


class TestPowerGraph:
    def test_matches_networkx_power(self):
        g = erdos_renyi_graph(25, 0.12, seed=4)
        nx_g = to_networkx(g)
        for h in (2, 3):
            expected = nx.power(nx_g, h)
            ours = power_graph(g, h)
            assert {frozenset(e) for e in ours.edges()} == {
                frozenset(e) for e in expected.edges()
            }

    def test_power_of_path(self):
        g = path_graph(5)
        squared = power_graph(g, 2)
        assert squared.has_edge(0, 2)
        assert not squared.has_edge(0, 3)

    def test_power_one_is_identity(self):
        g = cycle_graph(6)
        assert power_graph(g, 1) == g

    def test_alive_restriction(self):
        g = path_graph(5)
        restricted = power_graph(g, 2, alive={0, 1, 3, 4})
        # 1 and 3 are no longer within distance 2 because 2 is excluded.
        assert not restricted.has_edge(1, 3)
        assert restricted.has_edge(0, 1)

    def test_invalid_h(self):
        with pytest.raises(InvalidDistanceThresholdError):
            power_graph(cycle_graph(4), 0)


class TestCloseness:
    def test_matches_networkx(self):
        g = erdos_renyi_graph(30, 0.15, seed=5)
        nx_values = nx.closeness_centrality(to_networkx(g))
        ours = closeness_centrality(g)
        for v in g.vertices():
            assert ours[v] == pytest.approx(nx_values[v], abs=1e-9)

    def test_star_center_most_central(self):
        g = star_graph(6)
        values = closeness_centrality(g)
        assert max(values, key=values.get) == 0

    def test_subset_of_vertices(self):
        g = cycle_graph(6)
        values = closeness_centrality(g, vertices=[0, 1])
        assert set(values) == {0, 1}

    def test_isolated_vertex_zero(self):
        g = path_graph(3)
        g.add_vertex(99)
        assert closeness_centrality(g)[99] == 0.0


class TestBetweenness:
    def test_matches_networkx(self):
        g = erdos_renyi_graph(25, 0.15, seed=6)
        nx_values = nx.betweenness_centrality(to_networkx(g), normalized=True)
        ours = betweenness_centrality(g, normalized=True)
        for v in g.vertices():
            assert ours[v] == pytest.approx(nx_values[v], abs=1e-9)

    def test_unnormalized_matches_networkx(self):
        g = erdos_renyi_graph(20, 0.2, seed=7)
        nx_values = nx.betweenness_centrality(to_networkx(g), normalized=False)
        ours = betweenness_centrality(g, normalized=False)
        for v in g.vertices():
            assert ours[v] == pytest.approx(nx_values[v], abs=1e-9)

    def test_path_midpoint_highest(self):
        g = path_graph(5)
        values = betweenness_centrality(g)
        assert max(values, key=values.get) == 2


class TestTopK:
    def test_top_k_selection(self):
        centrality = {"a": 0.9, "b": 0.5, "c": 0.7}
        assert top_k_by_centrality(centrality, 2) == ["a", "c"]

    def test_top_k_larger_than_population(self):
        centrality = {"a": 1.0}
        assert top_k_by_centrality(centrality, 5) == ["a"]

"""Shared fixtures for the test suite.

Importable helpers (networkx oracle conversions, deterministic randomness)
live in :mod:`helpers` — test modules use ``from helpers import ...`` so the
module name cannot collide with ``benchmarks/conftest.py`` when pytest
collects the whole repository in one run.
"""

from __future__ import annotations

import pytest

from repro.graph import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    relaxed_caveman_graph,
    star_graph,
)


@pytest.fixture
def paper_style_graph() -> Graph:
    """A 13-vertex graph in the spirit of the paper's Figure 1.

    A small ring-ish dense region (vertices 4-13) attached to a sparse tail
    (vertices 1-3): the (k,2)-core decomposition separates the three groups
    while the classic decomposition barely distinguishes them.
    """
    edges = [
        (1, 2), (1, 3), (2, 3),
        (2, 4), (3, 5),
        (4, 5), (4, 6), (4, 10),
        (5, 7), (5, 11),
        (6, 7), (6, 8), (6, 12),
        (7, 9), (7, 13),
        (8, 9), (8, 10),
        (9, 11),
        (10, 12), (11, 13), (12, 13),
    ]
    return Graph(edges)


@pytest.fixture
def small_community_graph() -> Graph:
    """Four loosely linked communities of six vertices (deterministic)."""
    return relaxed_caveman_graph(4, 6, 0.15, seed=7)


@pytest.fixture
def triangle_with_tail() -> Graph:
    """A triangle with a pendant path — the smallest interesting (k,h) example."""
    return Graph([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])


@pytest.fixture(params=[0, 1, 2])
def seeded_random_graph(request) -> Graph:
    """A small ER graph per seed, for cross-algorithm agreement tests."""
    return erdos_renyi_graph(20, 0.15, seed=request.param)


@pytest.fixture
def disconnected_graph() -> Graph:
    """Two components plus an isolated vertex."""
    g = Graph([(0, 1), (1, 2), (2, 0), (10, 11), (11, 12)])
    g.add_vertex(99)
    return g


@pytest.fixture
def standard_graphs() -> dict:
    """A named battery of deterministic graphs exercising different shapes."""
    return {
        "complete_6": complete_graph(6),
        "cycle_9": cycle_graph(9),
        "path_8": path_graph(8),
        "star_7": star_graph(7),
        "grid_4x4": grid_graph(4, 4),
        "er_18": erdos_renyi_graph(18, 0.2, seed=5),
        "caveman": relaxed_caveman_graph(3, 5, 0.1, seed=3),
    }

"""Concurrency correctness for the (k,h)-core query service.

The property under test is **snapshot isolation**: with many concurrent
readers interleaved with a streamed update workload, every served core map
is a *whole epoch* — never a blend of pre- and post-update state.  Torn
reads are detected by recomputing the order-independent checksum the
service published with each epoch and comparing it against the payload.

Also covered: reads never block behind a slow re-peel, concurrent writers
serialize into a linear epoch history, and a hypothesis sweep proves the
publication discipline exact across batch sizes and engine backends.
"""

import asyncio
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import core_decomposition
from repro.core.backends import numpy_available
from repro.graph import generators as gen
from repro.serve import CoreService, core_checksum
from repro.serve.loadgen import AsyncHTTPClient

from serve_helpers import run_serve_session, wire_cores
from test_dynamic_properties import FAMILIES


BACKENDS = ("dict", "csr") + (("numpy",) if numpy_available() else ())


def _stream(graph, length, seed):
    from repro.dynamic import random_update_stream

    return random_update_stream(
        graph, length, new_vertex_p=0.05, seed=seed
    )


def _batched(stream, batch_size):
    return [
        stream[i:i + batch_size] for i in range(0, len(stream), batch_size)
    ]


class TestSnapshotIsolation:
    READERS = 8
    STREAM_LENGTH = 1000
    BATCH_SIZE = 4

    def test_eight_readers_against_a_1k_update_stream(self):
        """Zero torn reads under 8 readers + a 1000-update stream."""
        graph = gen.relaxed_caveman_graph(4, 6, 0.2, seed=11)
        stream = _stream(graph, self.STREAM_LENGTH, seed=17)
        batches = _batched(
            [(u.op, u.u, u.v) for u in stream], self.BATCH_SIZE
        )
        service = CoreService(graph, h=2)

        async def writer(server):
            client = await AsyncHTTPClient("127.0.0.1", server.port).connect()
            try:
                for batch in batches:
                    status, payload = await client.request(
                        "POST",
                        "/update",
                        {"updates": [[op, u, v] for op, u, v in batch]},
                    )
                    assert status == 200, payload
            finally:
                await client.close()

        async def reader(server, done, observations):
            client = await AsyncHTTPClient("127.0.0.1", server.port).connect()
            try:
                while not done.is_set():
                    status, payload = await client.request("GET", "/cores")
                    assert status == 200
                    observations.append(
                        (
                            payload["generation"],
                            payload["checksum"],
                            wire_cores(payload),
                        )
                    )
                    # Yield so the writer's batches interleave densely.
                    await asyncio.sleep(0)
            finally:
                await client.close()

        async def scenario(server, client):
            done = asyncio.Event()
            per_reader = [[] for _ in range(self.READERS)]
            readers = [
                asyncio.ensure_future(reader(server, done, observations))
                for observations in per_reader
            ]
            try:
                await writer(server)
            finally:
                done.set()
                await asyncio.gather(*readers)
            return per_reader

        per_reader = run_serve_session(service, scenario)

        total = 0
        by_generation = {}
        for observations in per_reader:
            assert observations, "every reader must have served requests"
            generations = [generation for generation, _, _ in observations]
            # Epochs are monotonic from any single reader's point of view.
            assert generations == sorted(generations)
            for generation, checksum, cores in observations:
                total += 1
                # The torn-read detector: the payload must hash to the
                # checksum published with its own epoch.
                assert core_checksum(cores) == checksum, (
                    f"torn read at generation {generation}"
                )
                # And one generation is one core map, across all readers.
                assert by_generation.setdefault(generation, checksum) == (
                    checksum
                )
        assert total >= self.READERS  # every reader really polled

        # Readers collectively crossed many epochs (the interleave was real:
        # with 250 committed batches a serial schedule would see only 1-2).
        assert len(by_generation) > 10

        # After the stream drains, the served state is exactly a
        # from-scratch decomposition of the final graph.
        final = max(by_generation)
        expected = core_decomposition(service.engine.graph.copy(), 2)
        assert by_generation[final] == core_checksum(expected.core_index)
        assert service.engine.stats.updates_applied == self.STREAM_LENGTH

    def test_reads_complete_while_an_update_is_in_flight(self):
        """A slow re-peel delays the next epoch, never an in-flight read."""
        graph = gen.relaxed_caveman_graph(3, 5, 0.2, seed=3)
        service = CoreService(graph, h=2)
        engine = service.engine
        entered = threading.Event()
        release = threading.Event()
        original = engine.apply_batch

        def slow_apply_batch(updates):
            entered.set()
            assert release.wait(timeout=10.0), "reader never released us"
            return original(updates)

        engine.apply_batch = slow_apply_batch  # type: ignore[method-assign]

        async def scenario(server, client):
            before = service.snapshot.generation
            writer_client = await AsyncHTTPClient(
                "127.0.0.1", server.port
            ).connect()
            update = asyncio.ensure_future(
                writer_client.request(
                    "POST", "/update", {"updates": [["+", 0, 7]]}
                )
            )
            try:
                # Wait until the writer thread is provably mid-batch.
                await asyncio.get_running_loop().run_in_executor(
                    None, entered.wait, 10.0
                )
                assert entered.is_set()

                # Reads still flow, and serve the *previous* epoch.
                started = time.perf_counter()
                for _ in range(5):
                    status, payload = await client.request("GET", "/cores")
                    assert status == 200
                    assert payload["generation"] == before
                elapsed = time.perf_counter() - started
                assert elapsed < 5.0  # nowhere near the writer's stall
            finally:
                release.set()
                status, payload = await update
                await writer_client.close()
            assert status == 200
            assert payload["generation"] == before + 1

            status, payload = await client.request("GET", "/cores")
            assert status == 200
            assert payload["generation"] == before + 1
            return True

        assert run_serve_session(service, scenario)

    def test_concurrent_writers_serialize_into_a_linear_history(self):
        """N clients posting at once: every batch lands, epochs are linear."""
        writers, batches_each = 6, 5
        service = CoreService(gen.cycle_graph(30), h=2)

        async def one_writer(server, index, results):
            client = await AsyncHTTPClient("127.0.0.1", server.port).connect()
            try:
                base = 100 + index * batches_each
                for step in range(batches_each):
                    status, payload = await client.request(
                        "POST",
                        "/update",
                        {"updates": [["+", index, base + step]]},
                    )
                    assert status == 200, payload
                    results.append(payload["generation"])
            finally:
                await client.close()

        async def scenario(server, client):
            results = []
            await asyncio.gather(
                *(
                    one_writer(server, index, results)
                    for index in range(writers)
                )
            )
            return results

        generations = run_serve_session(service, scenario)
        # One epoch per committed batch, no duplicates, no gaps: the initial
        # snapshot is generation 1, then one bump per batch.
        assert sorted(generations) == list(
            range(2, 2 + writers * batches_each)
        )
        assert service.engine.stats.batches == writers * batches_each
        expected = core_decomposition(service.engine.graph.copy(), 2)
        assert dict(service.snapshot.cores) == expected.core_index


class TestPublicationSweep:
    """Hypothesis sweep: exactness of publish-after-batch, sans HTTP."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        family=st.sampled_from(sorted(FAMILIES)),
        batch_size=st.sampled_from([1, 3, 7, 16]),
        backend=st.sampled_from(BACKENDS),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_every_epoch_is_exact(self, family, batch_size, backend, seed):
        graph = FAMILIES[family]()
        stream = _stream(graph, 24, seed=seed)
        service = CoreService(graph, h=2, backend=backend)
        try:
            snapshots = [service.snapshot]
            for batch in _batched(
                [(u.op, u.u, u.v) for u in stream], batch_size
            ):
                summary = service.apply_updates_sync(batch)
                snapshot = service.snapshot
                assert summary["generation"] == snapshot.generation
                snapshots.append(snapshot)
                # The epoch the writer just published is exact.
                expected = core_decomposition(service.engine.graph.copy(), 2)
                assert dict(snapshot.cores) == expected.core_index
                assert snapshot.checksum == core_checksum(
                    expected.core_index
                )
                assert snapshot.graph_version == service.engine.graph.version
            # Epoch history is strictly monotonic and fully frozen: no
            # snapshot was retroactively mutated by later batches.
            for earlier, later in zip(snapshots, snapshots[1:]):
                assert later.generation == earlier.generation + 1
            for snapshot in snapshots:
                assert core_checksum(snapshot.cores) == snapshot.checksum
        finally:
            service.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_http_roundtrip_on_each_backend(backend):
    """One end-to-end update/read cycle per backend behind the HTTP layer."""
    service = CoreService(
        gen.relaxed_caveman_graph(3, 4, 0.2, seed=9), h=2, backend=backend
    )

    async def scenario(server, client):
        status, payload = await client.request(
            "POST", "/update", {"updates": [["+", 0, 10], ["-", 0, 1]]}
        )
        assert status == 200
        status, payload = await client.request("GET", "/cores")
        assert status == 200
        expected = core_decomposition(service.engine.graph.copy(), 2)
        assert wire_cores(payload) == expected.core_index
        return True

    assert run_serve_session(service, scenario)

"""Tests for the streaming edge-list loader (repro.graph.stream_load).

Edge-case inputs (comments, garbage, duplicates, loops, string ids, empty
files), crash safety via the status sentinel, budget-independence of the
output bytes, and bit-identical decomposition parity — cores, removal
orders and traversal counters — between mmap-backed and in-RAM snapshots
across every generator family.
"""

import importlib
import os

import pytest

from repro.core import core_decomposition, core_decomposition_with_report
from repro.errors import GraphFormatError
from repro.graph import (
    FrozenGraphView,
    Graph,
    load_csr,
    read_edge_list,
    stream_load,
    stream_load_with_stats,
    write_edge_list,
)
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.graph.storage import BLOCK_SUFFIX
from repro.runtime import ExecutionContext

#: The loader *module* — the package re-exports the function under the
#: same name, so plain attribute access would shadow it.
loader = importlib.import_module("repro.graph.stream_load")


def _write(tmp_path, text, name="input.txt"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def _cores_of(csr, h=2):
    view = FrozenGraphView(csr)
    return core_decomposition(view, h=h).core_index


class TestEdgeCases:
    def test_comments_blanks_and_extra_columns(self, tmp_path):
        source = _write(tmp_path, (
            "# SNAP-style comment\n"
            "% KONECT-style comment\n"
            "\n"
            "   \n"
            "1 2 1.5 extra columns ignored\n"
            "2 3\n"
            "\t3\t1\t\n"
        ))
        csr, stats = stream_load_with_stats(source)
        try:
            assert stats.vertices == 3
            assert stats.edges == 3
            assert stats.lines == 7
        finally:
            csr.close()

    def test_duplicates_and_both_orientations_collapse(self, tmp_path):
        source = _write(tmp_path, "1 2\n2 1\n1 2\n2 3\n3 2\n")
        csr, stats = stream_load_with_stats(source)
        try:
            assert stats.edges == 2
            assert stats.duplicate_edges == 3
        finally:
            csr.close()

    def test_self_loops_dropped_but_vertex_kept(self, tmp_path):
        source = _write(tmp_path, "5 5\n1 2\n")
        csr, stats = stream_load_with_stats(source)
        try:
            assert stats.self_loops == 1
            assert stats.vertices == 3  # 1, 2 and the loop endpoint 5
            assert stats.edges == 1
            assert 5 in list(csr.labels)
        finally:
            csr.close()

    def test_bare_ids_are_isolated_vertices(self, tmp_path):
        source = _write(tmp_path, "7\n1 2\n")
        csr, _ = stream_load_with_stats(source)
        try:
            assert csr.num_vertices == 3
            assert csr.degree(csr.index(7)) == 0
        finally:
            csr.close()

    def test_non_contiguous_and_string_ids(self, tmp_path):
        source = _write(tmp_path, "100 7\nalpha 7\nbeta alpha\n100 beta\n")
        csr, stats = stream_load_with_stats(source)
        try:
            # Sorted order: ints ascending first, then strings.
            assert list(csr.labels) == [7, 100, "alpha", "beta"]
            assert not stats.identity_labels
            reference = core_decomposition(read_edge_list(source), h=2)
            assert _cores_of(csr) == reference.core_index
        finally:
            csr.close()

    def test_leading_zeros_unify_like_read_edge_list(self, tmp_path):
        source = _write(tmp_path, "01 2\n1 3\n")
        csr, _ = stream_load_with_stats(source)
        try:
            assert list(csr.labels) == [1, 2, 3]
            assert csr.degree(csr.index(1)) == 2
        finally:
            csr.close()

    def test_empty_file(self, tmp_path):
        source = _write(tmp_path, "")
        csr, stats = stream_load_with_stats(source)
        try:
            assert stats.vertices == 0
            assert stats.edges == 0
            assert _cores_of(csr) == {}
        finally:
            csr.close()

    def test_comment_only_file(self, tmp_path):
        source = _write(tmp_path, "# nothing\n% here\n")
        csr, stats = stream_load_with_stats(source)
        try:
            assert stats.vertices == 0
        finally:
            csr.close()

    def test_non_utf8_token_is_a_format_error(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_bytes(b"1 \xff\xfe\n")
        with pytest.raises(GraphFormatError, match="UTF-8"):
            stream_load(str(path))

    def test_oversized_int_is_a_format_error(self, tmp_path):
        source = _write(tmp_path, f"1 {10 ** 21}\n")
        with pytest.raises(GraphFormatError, match="outside"):
            stream_load(source)

    def test_missing_input_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            stream_load(str(tmp_path / "does-not-exist.txt"))


class TestCrashSafety:
    def test_interrupted_build_leaves_no_readable_artifact(
            self, tmp_path, monkeypatch):
        from repro.graph import storage as storage_mod

        source = _write(tmp_path, "1 2\n2 3\n")
        out = str(tmp_path / ("g" + BLOCK_SUFFIX))

        def exploding_finalize(self, *args, **kwargs):
            raise RuntimeError("simulated crash before the status flip")

        # Both patches target the class itself, which the loader shares.
        monkeypatch.setattr(storage_mod.BlockFileWriter, "finalize",
                            exploding_finalize)
        # The crash model: abort() never runs either (hard kill).
        monkeypatch.setattr(storage_mod.BlockFileWriter, "abort",
                            lambda self: self._close_handles())
        with pytest.raises(RuntimeError):
            stream_load(source, out_path=out)
        assert os.path.exists(out)  # bytes are there, but...
        with pytest.raises(GraphFormatError, match="incomplete"):
            load_csr(out)
        # Restore and prove a rebuild over the same path recovers.
        monkeypatch.undo()
        csr = stream_load(source, out_path=out)
        try:
            assert csr.num_edges == 2
        finally:
            csr.close()

    def test_failed_build_cleans_scratch_directory(self, tmp_path):
        source = _write(tmp_path, f"1 {10 ** 21}\n")
        with pytest.raises(GraphFormatError):
            stream_load(source, tmp_dir=str(tmp_path))
        leftovers = [f for f in os.listdir(tmp_path)
                     if f.startswith(".kh-core-load-")]
        assert leftovers == []


class TestBudgetIndependence:
    def test_tiny_budget_spills_but_output_is_identical(self, tmp_path):
        # Big enough that the clamped minimum budget (256 KiB) has to
        # spill mid-stream, not just flush its tail.
        graph = gen.relaxed_caveman_graph(16, 14, 0.2, seed=11)
        source = str(tmp_path / "g.edges")
        write_edge_list(graph, source)

        big = str(tmp_path / ("big" + BLOCK_SUFFIX))
        small = str(tmp_path / ("small" + BLOCK_SUFFIX))
        csr_big, stats_big = stream_load_with_stats(source, out_path=big)
        csr_big.close()
        csr_small, stats_small = stream_load_with_stats(
            source, out_path=small, max_ram_bytes=1)
        csr_small.close()
        assert stats_small.spill_runs > stats_big.spill_runs
        with open(big, "rb") as a, open(small, "rb") as b:
            assert a.read() == b.read()

    def test_external_relabel_is_byte_identical(self, tmp_path):
        graph = gen.powerlaw_cluster_graph(40, 2, 0.3, seed=5)
        source = str(tmp_path / "g.edges")
        write_edge_list(graph, source)
        fast = str(tmp_path / ("fast" + BLOCK_SUFFIX))
        slow = str(tmp_path / ("slow" + BLOCK_SUFFIX))
        csr, stats = stream_load_with_stats(source, out_path=fast,
                                            external_relabel=False)
        csr.close()
        assert not stats.external_relabel
        csr, stats = stream_load_with_stats(source, out_path=slow,
                                            external_relabel=True)
        csr.close()
        assert stats.external_relabel
        with open(fast, "rb") as a, open(slow, "rb") as b:
            assert a.read() == b.read()

    def test_cascaded_merge_is_byte_identical(self, tmp_path, monkeypatch):
        # Force the multi-level merge cascade (normally needs > 256 spill
        # runs) by shrinking the fan-in; the cascade consumes and unlinks
        # its input runs itself, which must not trip the later cleanup.
        graph = gen.relaxed_caveman_graph(16, 14, 0.2, seed=11)
        source = str(tmp_path / "g.edges")
        write_edge_list(graph, source)

        plain = str(tmp_path / ("plain" + BLOCK_SUFFIX))
        stream_load(source, out_path=plain).close()

        monkeypatch.setattr(loader, "_MAX_MERGE_FANIN", 2)
        cascaded = str(tmp_path / ("cascaded" + BLOCK_SUFFIX))
        csr, stats = stream_load_with_stats(source, out_path=cascaded,
                                            max_ram_bytes=1)
        csr.close()
        assert stats.spill_runs > 2
        with open(plain, "rb") as a, open(cascaded, "rb") as b:
            assert a.read() == b.read()

    def test_input_line_order_does_not_matter(self, tmp_path):
        forward = _write(tmp_path, "1 2\n2 3\n3 4\n", "f.txt")
        backward = _write(tmp_path, "4 3\n3 2\n2 1\n", "b.txt")
        out_f = str(tmp_path / ("f" + BLOCK_SUFFIX))
        out_b = str(tmp_path / ("b" + BLOCK_SUFFIX))
        stream_load(forward, out_path=out_f).close()
        stream_load(backward, out_path=out_b).close()
        with open(out_f, "rb") as a, open(out_b, "rb") as b:
            assert a.read() == b.read()


#: One representative per generator family (all 15 families — the parity
#: requirement floor is 14).  Sizes are kept small: the point is coverage
#: of structural shapes, not scale.
FAMILIES = [
    ("complete", lambda: gen.complete_graph(8)),
    ("cycle", lambda: gen.cycle_graph(24)),
    ("path", lambda: gen.path_graph(24)),
    ("star", lambda: gen.star_graph(15)),
    ("empty", lambda: gen.empty_graph(12)),
    ("erdos_renyi", lambda: gen.erdos_renyi_graph(30, 0.15, seed=3)),
    ("barabasi_albert", lambda: gen.barabasi_albert_graph(30, 2, seed=3)),
    ("watts_strogatz", lambda: gen.watts_strogatz_graph(30, 4, 0.2, seed=3)),
    ("grid", lambda: gen.grid_graph(5, 6)),
    ("road_network", lambda: gen.road_network_graph(5, 6, seed=3)),
    ("caveman", lambda: gen.caveman_graph(4, 5)),
    ("relaxed_caveman",
     lambda: gen.relaxed_caveman_graph(4, 5, 0.2, seed=3)),
    ("powerlaw_cluster",
     lambda: gen.powerlaw_cluster_graph(30, 2, 0.3, seed=3)),
    ("random_tree", lambda: gen.random_tree(30, seed=3)),
    ("planted_partition",
     lambda: gen.planted_partition_graph(3, 8, 0.6, 0.1, seed=3)),
]


class TestDecompositionParity:
    """storage=mmap must be bit-identical to in-RAM: cores, orders, counters."""

    @pytest.mark.parametrize("name,factory", FAMILIES,
                             ids=[name for name, _ in FAMILIES])
    def test_mmap_vs_ram_bit_identical(self, name, factory, tmp_path):
        graph = factory()
        source = str(tmp_path / f"{name}.edges")
        write_edge_list(graph, source)

        mmap_csr = stream_load(source)
        try:
            ram_csr = mmap_csr.to_ram()
            dict_graph = read_edge_list(source)
            for h in (1, 2, 3):
                results = {}
                for tag, csr in (("mmap", mmap_csr), ("ram", ram_csr)):
                    view = FrozenGraphView(csr)
                    with ExecutionContext(view, backend="csr") as context:
                        report = core_decomposition_with_report(
                            view, h, context=context)
                    results[tag] = report
                mm, rr = results["mmap"].result, results["ram"].result
                assert mm.core_index == rr.core_index, (name, h)
                assert mm.removal_order == rr.removal_order, (name, h)
                assert (results["mmap"].visits
                        == results["ram"].visits), (name, h)
                # And both agree with the dict-based reference on cores.
                reference = core_decomposition(dict_graph, h=h)
                assert mm.core_index == reference.core_index, (name, h)
        finally:
            mmap_csr.close()


class TestFromEdgeFile:
    def test_storage_mmap_keeps_block_mapped(self, tmp_path):
        graph = gen.relaxed_caveman_graph(4, 5, 0.2, seed=1)
        source = str(tmp_path / "g.edges")
        write_edge_list(graph, source)
        csr = CSRGraph.from_edge_file(source, storage="mmap")
        try:
            assert csr.storage_kind == "mmap"
            reference = core_decomposition(graph, h=2)
            assert _cores_of(csr) == reference.core_index
        finally:
            csr.close()

    def test_storage_ram_materializes(self, tmp_path):
        graph = gen.cycle_graph(10)
        source = str(tmp_path / "g.edges")
        write_edge_list(graph, source)
        csr = CSRGraph.from_edge_file(source, storage="ram")
        assert csr.storage_kind == "ram"
        assert csr.num_edges == 10

    def test_persisted_out_path_round_trips(self, tmp_path):
        graph = gen.star_graph(9)
        source = str(tmp_path / "g.edges")
        write_edge_list(graph, source)
        out = str(tmp_path / ("g" + BLOCK_SUFFIX))
        csr = CSRGraph.from_edge_file(source, storage="mmap", out_path=out)
        csr.close()
        reopened = load_csr(out)
        try:
            assert reopened.num_vertices == 10
            assert reopened.num_edges == 9
        finally:
            reopened.close()


class TestGraphEquivalence:
    def test_loader_agrees_with_read_edge_list(self, tmp_path):
        graph = gen.planted_partition_graph(3, 6, 0.7, 0.1, seed=9)
        source = str(tmp_path / "g.edges")
        write_edge_list(graph, source)
        csr, _ = stream_load_with_stats(source)
        try:
            loaded = read_edge_list(source)
            view = FrozenGraphView(csr)
            assert set(view.vertices()) == set(loaded.vertices())
            assert ({frozenset(e) for e in view.edges()}
                    == {frozenset(e) for e in loaded.edges()})
        finally:
            csr.close()

    def test_isolated_vertices_survive(self, tmp_path):
        graph = Graph([(1, 2)])
        graph.add_vertex(99)
        source = str(tmp_path / "g.edges")
        write_edge_list(graph, source)
        csr, stats = stream_load_with_stats(source)
        try:
            assert stats.vertices == 3
            assert csr.degree(csr.index(99)) == 0
        finally:
            csr.close()

"""Parity and lifecycle tests for the compiled ``native`` engine.

Exactly the contract the numpy battery enforces, one engine further up the
ladder: the native engine drives the *same* peel kernels through a
structurally-twin scratch, so core numbers, h-degrees, removal orders and
instrumentation totals must be bit-identical to every interpreted engine —
across every generator family, for h in {1, 2, 3}, with and without the
cache-locality relabeling, over every executor, and through the
shared-memory process path.

Numba itself is optional even for this battery: when it is absent the
kernels run as interpreted Python (the ``KH_CORE_NATIVE_ALLOW_INTERPRETED``
lever, set by the autouse fixture below), which executes the identical
kernel code path minus the compilation — so CI machines without a working
LLVM still verify every result the compiled engine can produce.  Only NumPy
is genuinely required; without it everything here skips except the
degraded-story battery at the bottom.
"""

from __future__ import annotations

import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compute_h_degrees, h_bz, h_lb, h_lb_ub
from repro.core.backends import (
    CSREngine,
    DictEngine,
    NativeEngine,
    native_available,
    resolve_engine,
    resolved_backend_name,
    numpy_available,
)
from repro.errors import ParameterError
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph, relabel_order
from repro.instrumentation import Counters
from repro.runtime import ExecutionContext
from repro.traversal.array_bfs import DEAD, AliveMask, ArrayBFS

from test_peel_state import FAMILIES

# The native *code paths* need only NumPy: the autouse fixture below allows
# the interpreted-kernel fallback, so the battery runs with or without a
# real Numba install.
requires_numpy = pytest.mark.skipif(not numpy_available(),
                                    reason="NumPy not installed")

RELABELS = [None, "degree", "bfs"]


@pytest.fixture(autouse=True)
def _allow_interpreted_kernels(monkeypatch):
    """Let the native engine run without a compiler (results identical)."""
    monkeypatch.setenv("KH_CORE_NATIVE_ALLOW_INTERPRETED", "1")


def _label_degrees(engine, h, **kwargs):
    return engine.to_labels(engine.bulk_h_degrees(h, **kwargs))


# --------------------------------------------------------------------- #
# bulk h-degree parity
# --------------------------------------------------------------------- #
@requires_numpy
class TestBulkParity:
    @pytest.mark.parametrize("h", [1, 2, 3])
    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    @pytest.mark.parametrize("relabel", RELABELS,
                             ids=["plain", "degree", "bfs"])
    def test_bulk_h_degrees_all_families(self, family, h, relabel):
        """native == csr == dict h-degrees, and native/csr counter totals."""
        graph = FAMILIES[family]()
        reference = _label_degrees(DictEngine(graph), h)
        csr_counters, native_counters = Counters(), Counters()
        csr = CSREngine(graph, relabel=relabel)
        compiled = NativeEngine(graph, relabel=relabel)
        assert _label_degrees(csr, h, counters=csr_counters) == reference
        assert _label_degrees(compiled, h,
                              counters=native_counters) == reference
        assert native_counters.as_dict() == csr_counters.as_dict()

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_bulk_executors_match(self, executor):
        graph = gen.erdos_renyi_graph(60, 0.1, seed=5)
        expected = _label_degrees(CSREngine(graph), 2)
        compiled = NativeEngine(graph)
        assert _label_degrees(compiled, 2, executor=executor,
                              num_workers=3) == expected

    def test_bulk_process_executor_matches(self):
        graph = gen.erdos_renyi_graph(48, 0.12, seed=6)
        expected = _label_degrees(CSREngine(graph), 2)
        compiled = NativeEngine(graph)
        try:
            assert _label_degrees(compiled, 2, executor="process",
                                  num_workers=2) == expected
        finally:
            compiled.close()

    def test_bulk_respects_alive_subset(self):
        graph = gen.relaxed_caveman_graph(4, 5, 0.2, seed=2)
        csr = CSREngine(graph)
        compiled = NativeEngine(graph)
        half = [i for i in csr.nodes() if i % 2 == 0]
        expected = None
        for engine in (csr, compiled):
            alive = engine.alive_subset(half)
            got = engine.bulk_h_degrees(2, targets=half, alive=alive)
            if engine is csr:
                expected = got
        assert got == expected

    def test_compute_h_degrees_facade(self):
        graph = gen.watts_strogatz_graph(30, 4, 0.2, seed=4)
        assert (compute_h_degrees(graph, 2, backend="native")
                == compute_h_degrees(graph, 2, backend="dict"))


# --------------------------------------------------------------------- #
# whole-algorithm parity (shared peel kernels on top of the scratch)
# --------------------------------------------------------------------- #
@requires_numpy
class TestAlgorithmParity:
    @pytest.mark.parametrize("h", [1, 2, 3])
    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    def test_identical_runs_all_families(self, family, h):
        """Same cores, same removal order, same counters as the CSR engine."""
        graph = FAMILIES[family]()
        runs = {}
        for backend in ("csr", "native"):
            counters = Counters()
            with ExecutionContext(graph, backend=backend,
                                  counters=counters) as context:
                result = h_lb(graph, h, context=context)
            runs[backend] = (result.core_index, result.removal_order,
                             counters.as_dict())
        assert runs["native"][0] == runs["csr"][0], "core numbers diverged"
        assert runs["native"][1] == runs["csr"][1], "removal orders diverged"
        assert runs["native"][2] == runs["csr"][2], "counter totals diverged"

    @pytest.mark.parametrize("algorithm", [h_bz, h_lb, h_lb_ub],
                             ids=["h-BZ", "h-LB", "h-LB+UB"])
    @pytest.mark.parametrize("relabel", RELABELS,
                             ids=["plain", "degree", "bfs"])
    def test_relabeled_runs_agree(self, algorithm, relabel):
        """Relabeling changes indices, never label-space results."""
        graph = gen.powerlaw_cluster_graph(24, 2, 0.4, seed=9)
        reference = algorithm(graph, 2, backend="dict").core_index
        runs = {}
        for backend in ("csr", "native"):
            counters = Counters()
            with ExecutionContext(graph, backend=backend, relabel=relabel,
                                  counters=counters) as context:
                result = algorithm(graph, 2, context=context)
            assert result.core_index == reference, (backend, relabel)
            runs[backend] = (result.removal_order, counters.as_dict())
        # Under the *same* relabeling the two engines share one handle
        # space, so even the removal orders and counters coincide.
        assert runs["native"] == runs["csr"]

    def test_four_engine_agreement(self):
        """dict, csr, numpy and native: one decomposition, to the bit."""
        graph = gen.watts_strogatz_graph(48, 4, 0.1, seed=11)
        runs = {}
        for backend in ("dict", "csr", "numpy", "native"):
            result = h_lb(graph, 2, backend=backend)
            runs[backend] = (result.core_index, result.removal_order)
        assert runs["csr"] == runs["numpy"] == runs["native"]
        assert runs["dict"][0] == runs["csr"][0]

    @settings(max_examples=25, deadline=None)
    @given(
        num_vertices=st.integers(min_value=2, max_value=18),
        edge_probability=st.floats(min_value=0.05, max_value=0.6),
        seed=st.integers(min_value=0, max_value=10_000),
        h=st.integers(min_value=1, max_value=3),
        executor=st.sampled_from(["serial", "thread"]),
        workers=st.integers(min_value=1, max_value=3),
        relabel=st.sampled_from(RELABELS),
    )
    def test_hypothesis_native_executor_sweep(self, num_vertices,
                                              edge_probability, seed, h,
                                              executor, workers, relabel):
        """Random graphs through the context: every mix equals the reference."""
        import os

        os.environ.setdefault("KH_CORE_NATIVE_ALLOW_INTERPRETED", "1")
        graph = gen.erdos_renyi_graph(num_vertices, edge_probability,
                                      seed=seed)
        reference = h_lb(graph, h, backend="dict").core_index
        with ExecutionContext(graph, backend="native", executor=executor,
                              num_workers=workers,
                              relabel=relabel) as context:
            for algorithm in (h_lb, h_lb_ub, h_bz):
                assert algorithm(graph, h,
                                 context=context).core_index == reference


# --------------------------------------------------------------------- #
# scratch-level parity (single-source runs, the bulk kernel)
# --------------------------------------------------------------------- #
@requires_numpy
class TestScratchParity:
    def scratches(self, graph):
        from repro.traversal.native_bfs import NativeBFS

        csr = CSRGraph.from_graph(graph)
        return csr, ArrayBFS(csr), NativeBFS(csr)

    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    def test_single_source_identical_orders(self, family):
        """Visit order, level segmentation, distances: all identical."""
        graph = FAMILIES[family]()
        csr, interpreted, compiled = self.scratches(graph)
        for source in range(csr.num_vertices):
            for h in (1, 2, None):
                a = interpreted.run(source, h)
                b = compiled.run(source, h)
                assert a == b
                assert interpreted.order == compiled.order
                assert interpreted.level_ends == compiled.level_ends
                assert (interpreted.visited_with_distance()
                        == compiled.visited_with_distance())

    def test_alive_mask_and_discard_sync(self):
        """Shared AliveMask protocol: installs and discards stay in sync."""
        graph = gen.relaxed_caveman_graph(3, 5, 0.2, seed=1)
        csr, interpreted, compiled = self.scratches(graph)
        a_mask = AliveMask.full(csr.num_vertices)
        b_mask = AliveMask.full(csr.num_vertices)
        order = list(range(csr.num_vertices))
        for victim in order[::2]:
            assert (interpreted.run(victim, 2, a_mask)
                    == compiled.run(victim, 2, b_mask))
            assert interpreted.order == compiled.order
            # Discard after the run: the next runs must skip the victim via
            # the DEAD sentinel both scratches share.
            a_mask.discard(victim)
            b_mask.discard(victim)
        survivors = [v for v in order if v not in set(order[::2])]
        for source in survivors:
            assert (interpreted.run(source, 3, a_mask)
                    == compiled.run(source, 3, b_mask))
            assert interpreted.order == compiled.order

    def test_generation_rollover_is_sound(self):
        """Forcing the generation to the sentinel resets instead of corrupting."""
        graph = gen.cycle_graph(8)
        _, interpreted, compiled = self.scratches(graph)
        expected = compiled.run(0, 2)
        compiled._generation = DEAD - 1
        assert compiled.run(0, 2) == expected
        assert compiled._generation == 1  # restarted after the reinstall

    def test_bulk_kernel_matches_per_source_loop(self):
        """The many-sources kernel and the per-source loop: one answer."""
        for builder in (lambda: gen.star_graph(40),
                        lambda: gen.erdos_renyi_graph(50, 0.15, seed=8),
                        lambda: gen.grid_graph(6, 6)):
            graph = builder()
            csr, interpreted, compiled = self.scratches(graph)
            sources = list(range(csr.num_vertices))
            for h in (1, 2, 3):
                per_source = [interpreted.run(v, h) for v in sources]
                assert compiled.bulk(sources, h).tolist() == per_source

    def test_bulk_respects_alive_mask(self):
        graph = gen.relaxed_caveman_graph(4, 4, 0.3, seed=7)
        csr, interpreted, compiled = self.scratches(graph)
        alive = AliveMask.of(csr.num_vertices,
                             range(0, csr.num_vertices, 2))
        sources = list(range(0, csr.num_vertices, 2))
        expected = [interpreted.run(v, 2, alive, hook=False)
                    for v in sources]
        assert compiled.bulk(sources, 2, alive).tolist() == expected

    def test_bulk_generation_rollover_is_sound(self):
        graph = gen.cycle_graph(10)
        _, _, compiled = self.scratches(graph)
        expected = compiled.bulk(range(10), 2).tolist()
        compiled._bulk_generation = DEAD - 3
        assert compiled.bulk(range(10), 2).tolist() == expected

    def test_counters_batch_totals(self):
        graph = gen.erdos_renyi_graph(40, 0.12, seed=3)
        csr, interpreted, compiled = self.scratches(graph)
        loop_counters, bulk_counters = Counters(), Counters()
        for v in range(csr.num_vertices):
            interpreted.run(v, 2, counters=loop_counters)
        compiled.bulk(range(csr.num_vertices), 2, counters=bulk_counters)
        assert bulk_counters.bfs_calls == loop_counters.bfs_calls
        assert (bulk_counters.vertices_visited
                == loop_counters.vertices_visited)

    def test_clone_shares_arrays_not_scratch(self):
        graph = gen.grid_graph(5, 5)
        _, _, compiled = self.scratches(graph)
        twin = compiled.clone()
        assert twin.indptr is compiled.indptr
        assert twin.adjacency is compiled.adjacency
        assert twin._seen is not compiled._seen
        assert compiled.run(0, 2) == twin.run(0, 2)
        assert compiled.order == twin.order


# --------------------------------------------------------------------- #
# shared-memory path
# --------------------------------------------------------------------- #
@requires_numpy
class TestSharedMemoryPath:
    def test_run_chunk_native_kind_matches_csr_kind(self):
        from repro.parallel import SharedCSRExport
        from repro.parallel.worker import run_chunk

        graph = gen.relaxed_caveman_graph(4, 5, 0.2, seed=4)
        csr = CSRGraph.from_graph(graph)
        export = SharedCSRExport(csr, generation=1)
        try:
            chunk = list(range(csr.num_vertices))
            csr_pairs, csr_counters = run_chunk(export.layout(), chunk, 2,
                                                False, 0, "csr")
            nat_pairs, nat_counters = run_chunk(export.layout(), chunk, 2,
                                                False, 0, "native")
            assert dict(nat_pairs) == dict(csr_pairs)
            assert nat_counters.as_dict() == csr_counters.as_dict()
        finally:
            from repro.parallel.worker import _detach

            _detach()
            export.close()

    def test_run_chunk_downgrades_to_numpy_without_numba(self, monkeypatch):
        """engine_kind='native' falls one rung to the vectorized kernel."""
        from repro.parallel import SharedCSRExport
        from repro.parallel import worker as worker_module

        # No compiler and no interpreted lever: the native kind must not
        # attach, but the worker still has NumPy.
        monkeypatch.delenv("KH_CORE_NATIVE_ALLOW_INTERPRETED", raising=False)
        graph = gen.cycle_graph(12)
        csr = CSRGraph.from_graph(graph)
        export = SharedCSRExport(csr, generation=1)
        try:
            import repro.traversal.native_bfs as native_bfs

            if native_bfs.NUMBA_AVAILABLE:
                pytest.skip("numba installed: no downgrade to observe")
            pairs, _ = worker_module.run_chunk(export.layout(),
                                               list(range(12)), 2, False, 0,
                                               "native")
            assert worker_module._STATE["kind"] == "numpy"
            assert dict(pairs) == {v: 4 for v in range(12)}
            # The downgrade is cached under the *requested* kind.
            view = worker_module._STATE["view"]
            worker_module.run_chunk(export.layout(), [0, 1], 2, False, 0,
                                    "native")
            assert worker_module._STATE["view"] is view
        finally:
            worker_module._detach()
            export.close()

    def test_run_chunk_bottoms_out_at_interpreted(self, monkeypatch):
        """With neither Numba nor NumPy importable, the csr kernel answers."""
        from repro.parallel import SharedCSRExport
        from repro.parallel import worker as worker_module

        graph = gen.cycle_graph(12)
        csr = CSRGraph.from_graph(graph)
        export = SharedCSRExport(csr, generation=1)
        monkeypatch.setitem(sys.modules, "repro.traversal.native_bfs", None)
        monkeypatch.setitem(sys.modules, "repro.traversal.numpy_bfs", None)
        try:
            pairs, _ = worker_module.run_chunk(export.layout(),
                                               list(range(12)), 2, False, 0,
                                               "native")
            assert worker_module._STATE["kind"] == "csr"
            assert dict(pairs) == {v: 4 for v in range(12)}
        finally:
            worker_module._detach()
            export.close()


# --------------------------------------------------------------------- #
# engine resolution, warm-up, refresh, dynamic plumbing
# --------------------------------------------------------------------- #
@requires_numpy
class TestEngineResolution:
    def test_explicit_native_engine(self):
        graph = gen.cycle_graph(6)
        engine = resolve_engine(graph, "native")
        assert isinstance(engine, NativeEngine)
        assert engine.name == "native"

    def test_auto_prefers_native_above_threshold(self, monkeypatch):
        graph = gen.cycle_graph(40)
        monkeypatch.setenv("KH_CORE_NATIVE_THRESHOLD", "0")
        assert resolved_backend_name(graph, "auto") == "native"
        assert isinstance(resolve_engine(graph, "auto"), NativeEngine)
        monkeypatch.setenv("KH_CORE_NATIVE_THRESHOLD", "100")
        monkeypatch.setenv("KH_CORE_NUMPY_THRESHOLD", "100")
        assert resolved_backend_name(graph, "auto") == "csr"

    def test_auto_ladder_native_sits_above_numpy(self, monkeypatch):
        """Between the two thresholds auto picks numpy, above both native."""
        graph = gen.cycle_graph(50)
        monkeypatch.setenv("KH_CORE_NUMPY_THRESHOLD", "10")
        monkeypatch.setenv("KH_CORE_NATIVE_THRESHOLD", "100")
        assert resolved_backend_name(graph, "auto") == "numpy"
        monkeypatch.setenv("KH_CORE_NATIVE_THRESHOLD", "10")
        assert resolved_backend_name(graph, "auto") == "native"

    def test_warmup_runs_at_construction_by_default(self, monkeypatch):
        from repro.traversal import native_bfs

        calls = []
        monkeypatch.setattr(native_bfs, "warmup_kernels",
                            lambda: calls.append(1))
        monkeypatch.delenv("KH_CORE_NATIVE_WARMUP", raising=False)
        NativeEngine(gen.cycle_graph(6))
        assert calls == [1]

    def test_warmup_flag_disables_the_prewarm(self, monkeypatch):
        from repro.traversal import native_bfs

        calls = []
        monkeypatch.setattr(native_bfs, "warmup_kernels",
                            lambda: calls.append(1))
        monkeypatch.setenv("KH_CORE_NATIVE_WARMUP", "0")
        engine = NativeEngine(gen.cycle_graph(6))
        assert calls == []
        # The engine still answers correctly (kernels compile on first use).
        assert _label_degrees(engine, 2) == _label_degrees(
            DictEngine(engine.graph), 2)

    def test_warmup_is_idempotent(self):
        from repro.traversal.native_bfs import warmup_kernels

        warmup_kernels()
        warmup_kernels()

    def test_refresh_rebuilds_compiled_scratch(self):
        from repro.traversal.native_bfs import NativeBFS

        graph = gen.cycle_graph(10)
        engine = NativeEngine(graph)
        assert isinstance(engine.scratch, NativeBFS)
        before = _label_degrees(engine, 2)
        graph.add_edge(0, 5)
        engine.refresh({0, 5})
        assert isinstance(engine.scratch, NativeBFS)
        after = _label_degrees(engine, 2)
        assert after == _label_degrees(DictEngine(graph), 2)
        assert after != before

    def test_array_peel_is_inherited(self):
        """peel='auto' resolves to the array kernel, as for every CSR child."""
        from repro.runtime.peel import resolve_peel_kind

        engine = NativeEngine(gen.cycle_graph(8))
        assert resolve_peel_kind(engine, "auto") == "array"

    def test_relabel_through_context(self):
        graph = gen.barabasi_albert_graph(30, 2, seed=2)
        with ExecutionContext(graph, backend="native",
                              relabel="degree") as context:
            assert context.engine.csr.labels == relabel_order(graph,
                                                              "degree")

    def test_dynamic_engine_on_native_backend(self):
        from repro.dynamic import DynamicKHCore

        graph = gen.cycle_graph(8)
        engine = DynamicKHCore(graph, h=2, backend="native", relabel="bfs")
        try:
            assert engine.backend == "native"
            engine.insert_edge(0, 4)
            expected = h_lb(engine.graph, 2, backend="dict").core_index
            assert engine.core_numbers() == expected
        finally:
            engine.close()


# --------------------------------------------------------------------- #
# the degraded story: Numba absent / disabled
# --------------------------------------------------------------------- #
class TestWithoutNative:
    def test_auto_never_selects_native(self, monkeypatch):
        from repro.core import backends

        monkeypatch.setattr(backends, "native_available", lambda: False)
        monkeypatch.setenv("KH_CORE_NATIVE_THRESHOLD", "0")
        monkeypatch.setenv("KH_CORE_NUMPY_THRESHOLD", "10**9")
        graph = gen.cycle_graph(40)
        assert resolved_backend_name(graph, "auto") in ("csr", "numpy")
        engine = resolve_engine(graph, "auto")
        assert not isinstance(engine, NativeEngine)

    def test_explicit_request_raises_clear_error(self, monkeypatch):
        from repro.core import backends

        # Simulate a genuinely missing install (not the kill switch): the
        # error must point at the optional dependency.
        monkeypatch.delenv("KH_CORE_DISABLE_NATIVE", raising=False)
        monkeypatch.setattr(backends, "native_available", lambda: False)
        with pytest.raises(ParameterError, match="optional Numba"):
            resolve_engine(gen.cycle_graph(6), "native")

    def test_disable_env_var_is_a_kill_switch(self, monkeypatch):
        monkeypatch.setenv("KH_CORE_DISABLE_NATIVE", "1")
        monkeypatch.setenv("KH_CORE_NATIVE_ALLOW_INTERPRETED", "1")
        assert not native_available()
        # The error names the kill switch, not a missing dependency —
        # "pip install" advice would be wrong when Numba is installed.
        with pytest.raises(ParameterError, match="KH_CORE_DISABLE_NATIVE"):
            resolve_engine(gen.cycle_graph(6), "native")

    def test_native_requires_numpy_too(self, monkeypatch):
        """The kernels run on ndarrays: no NumPy means no native engine."""
        monkeypatch.setenv("KH_CORE_DISABLE_NUMPY", "1")
        monkeypatch.setenv("KH_CORE_NATIVE_ALLOW_INTERPRETED", "1")
        assert not native_available()

    def test_interpreted_lever_enables_without_numba(self, monkeypatch):
        import importlib.util

        monkeypatch.delenv("KH_CORE_DISABLE_NATIVE", raising=False)
        monkeypatch.delenv("KH_CORE_DISABLE_NUMPY", raising=False)
        monkeypatch.setenv("KH_CORE_NATIVE_ALLOW_INTERPRETED", "1")
        if importlib.util.find_spec("numpy") is None:
            assert not native_available()
        else:
            assert native_available()
        monkeypatch.delenv("KH_CORE_NATIVE_ALLOW_INTERPRETED", raising=False)
        if importlib.util.find_spec("numba") is None:
            assert not native_available()

    def test_native_module_imports_without_numba(self):
        """The kernel module itself never hard-requires the compiler."""
        import repro.traversal.native_bfs as native_bfs

        assert hasattr(native_bfs, "NativeBFS")
        assert isinstance(native_bfs.NUMBA_AVAILABLE, bool)

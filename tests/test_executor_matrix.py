"""Executor x engine interaction battery.

BENCH_PR5's engine x executor matrix exposed that the thread executor added
nothing to the interpreted engines (every kernel held the GIL); the native
engine exists to change that.  This battery is the *correctness* half of
the regression guard: every (engine, executor, workers) cell must produce
the same label-space h-degrees, the same decomposition, and the same merged
counter totals as the serial reference — including the native engine on
the thread path, where the kernels genuinely run concurrently (the GIL is
released), making result identity a real concurrency-safety assertion
rather than a tautology.

The wall-clock half (thread no worse than serial for csr/numpy, thread
*faster* than serial for native) lives in ``benchmarks/test_native_engine.py``
with the other timing assertions, under the usual quick-mode/xdist guards.

The native engine runs through its interpreted-kernel lever when Numba is
absent (identical results); everything needing ndarrays skips without NumPy.
"""

from __future__ import annotations

import pytest

from repro.core import h_lb
from repro.core.backends import numpy_available, resolve_engine
from repro.graph import generators as gen
from repro.instrumentation import Counters
from repro.runtime import ExecutionContext

requires_numpy = pytest.mark.skipif(not numpy_available(),
                                    reason="NumPy not installed")

EXECUTOR_CELLS = [("serial", 1), ("thread", 2), ("thread", 4),
                  ("process", 2)]


@pytest.fixture(autouse=True)
def _allow_interpreted_kernels(monkeypatch):
    """Run the native cells without a compiler (results identical)."""
    monkeypatch.setenv("KH_CORE_NATIVE_ALLOW_INTERPRETED", "1")


def _engines_under_test():
    engines = ["dict", "csr"]
    if numpy_available():
        engines += ["numpy", "native"]
    return engines


def _matrix_graph():
    # Two caveman-ish communities plus shortcut edges: uneven degrees make
    # the LPT chunk plan produce genuinely different batches per worker
    # count, so a scheduling bug cannot hide behind uniform chunks.
    graph = gen.relaxed_caveman_graph(5, 8, 0.25, seed=13)
    for i in range(0, 30, 3):
        graph.add_edge(i, (i * 7 + 11) % graph.num_vertices)
    return graph


class TestResultIdentity:
    @pytest.mark.parametrize("engine_name", ["dict", "csr", "numpy",
                                             "native"])
    def test_bulk_h_degrees_identical_across_executors(self, engine_name):
        """Every executor cell returns the serial cell's exact dict."""
        if engine_name in ("numpy", "native") and not numpy_available():
            pytest.skip("NumPy not installed")
        graph = _matrix_graph()
        engine = resolve_engine(graph, engine_name)
        try:
            reference = None
            for executor, workers in EXECUTOR_CELLS:
                got = engine.to_labels(engine.bulk_h_degrees(
                    2, executor=executor, num_workers=workers))
                if reference is None:
                    reference = got
                else:
                    assert got == reference, (engine_name, executor, workers)
        finally:
            engine.close()

    @requires_numpy
    @pytest.mark.parametrize("executor,workers", EXECUTOR_CELLS,
                             ids=[f"{e}-{w}" for e, w in EXECUTOR_CELLS])
    def test_native_thread_matches_csr_serial(self, executor, workers):
        """The GIL-free path against the interpreted reference, cell by cell."""
        graph = _matrix_graph()
        csr = resolve_engine(graph, "csr")
        compiled = resolve_engine(graph, "native")
        try:
            expected = csr.to_labels(csr.bulk_h_degrees(2))
            got = compiled.to_labels(compiled.bulk_h_degrees(
                2, executor=executor, num_workers=workers))
            assert got == expected
        finally:
            csr.close()
            compiled.close()

    def test_decomposition_identical_across_matrix(self):
        """Full h-LB runs: cores and removal orders agree in every cell."""
        graph = _matrix_graph()
        reference = h_lb(graph, 2, backend="dict").core_index
        for engine_name in _engines_under_test():
            for executor, workers in EXECUTOR_CELLS:
                with ExecutionContext(graph, backend=engine_name,
                                      executor=executor,
                                      num_workers=workers) as context:
                    result = h_lb(graph, 2, context=context)
                assert result.core_index == reference, (
                    engine_name, executor, workers)

    def test_counter_totals_identical_across_executors(self):
        """Merged per-worker counters equal the serial totals exactly."""
        graph = _matrix_graph()
        for engine_name in _engines_under_test():
            if engine_name == "dict":
                # The dict engine's executor path routes through the
                # compute_h_degrees facade, whose counter surface the
                # facade tests already cover.
                continue
            totals = []
            engine = resolve_engine(graph, engine_name)
            try:
                for executor, workers in EXECUTOR_CELLS:
                    counters = Counters()
                    engine.bulk_h_degrees(2, executor=executor,
                                          num_workers=workers,
                                          counters=counters)
                    totals.append(counters.as_dict())
            finally:
                engine.close()
            assert all(t == totals[0] for t in totals), engine_name

    @requires_numpy
    def test_native_thread_under_peeling_alive_masks(self):
        """Threaded bulk passes over shrinking alive sets stay identical.

        Exercises the mid-peel shape: an alive mask with discards, a target
        subset, and multiple thread workers hitting the compiled bulk
        kernel through cloned scratches.
        """
        graph = _matrix_graph()
        csr = resolve_engine(graph, "csr")
        compiled = resolve_engine(graph, "native")
        try:
            survivors = [i for i in csr.nodes() if i % 3 != 0]
            masks = {"csr": csr.alive_subset(survivors),
                     "native": compiled.alive_subset(survivors)}
            expected = csr.bulk_h_degrees(2, targets=survivors,
                                          alive=masks["csr"])
            for workers in (2, 4):
                got = compiled.bulk_h_degrees(2, targets=survivors,
                                              alive=masks["native"],
                                              executor="thread",
                                              num_workers=workers)
                assert got == expected, workers
        finally:
            csr.close()
            compiled.close()

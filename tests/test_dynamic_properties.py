"""Property tests: dynamic maintenance is exact at every stream prefix.

The acceptance property of the dynamic subsystem: after **every** prefix of
a mixed insert/delete stream, :meth:`DynamicKHCore.core_numbers` equals a
from-scratch :func:`core_decomposition` of the current graph — across every
generator family, for h in {1, 2, 3}, on both backends.  A hypothesis sweep
over unstructured random streams backs up the deterministic battery.
"""

import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import core_decomposition
from repro.dynamic import DynamicKHCore, random_update_stream
from repro.graph import Graph
from repro.graph import generators as gen

#: One small representative per generator family (every family in
#: repro.graph.generators is covered).
FAMILIES = {
    "complete": lambda: gen.complete_graph(7),
    "cycle": lambda: gen.cycle_graph(12),
    "path": lambda: gen.path_graph(12),
    "star": lambda: gen.star_graph(8),
    "grid": lambda: gen.grid_graph(4, 4),
    "erdos_renyi": lambda: gen.erdos_renyi_graph(16, 0.18, seed=3),
    "barabasi_albert": lambda: gen.barabasi_albert_graph(16, 2, seed=3),
    "watts_strogatz": lambda: gen.watts_strogatz_graph(14, 4, 0.2, seed=3),
    "powerlaw_cluster": lambda: gen.powerlaw_cluster_graph(16, 2, 0.3, seed=3),
    "caveman": lambda: gen.caveman_graph(3, 4),
    "relaxed_caveman": lambda: gen.relaxed_caveman_graph(3, 4, 0.2, seed=3),
    "planted_partition": lambda: gen.planted_partition_graph(3, 5, 0.6, 0.1,
                                                             seed=3),
    "random_tree": lambda: gen.random_tree(14, seed=3),
    "road_network": lambda: gen.road_network_graph(4, 4, seed=3),
}

STREAM_LENGTH = 10


def replay_and_check(graph, h, backend, updates, **engine_kwargs):
    """Apply ``updates`` one by one, checking exactness after each prefix."""
    engine = DynamicKHCore(graph, h=h, backend=backend, **engine_kwargs)
    for step, update in enumerate(updates):
        engine.apply(*update)
        expected = core_decomposition(engine.graph, h).core_index
        assert engine.core_numbers() == expected, (
            f"prefix {step + 1}: dynamic maintenance diverged on "
            f"{update} (backend={backend}, h={h})"
        )
    return engine


@pytest.mark.parametrize("backend", ["dict", "csr"])
@pytest.mark.parametrize("h", [1, 2, 3])
@pytest.mark.parametrize("family", sorted(FAMILIES),
                         ids=sorted(FAMILIES))
def test_every_prefix_matches_from_scratch(family, h, backend):
    graph = FAMILIES[family]()
    # zlib.crc32 is stable across processes (unlike str hash), so failures
    # reproduce with the same stream.
    updates = random_update_stream(graph, STREAM_LENGTH,
                                   new_vertex_p=0.15,
                                   seed=zlib.crc32(f"{family}/{h}".encode()))
    # fallback_ratio=1.0 keeps the engine on the incremental path (the code
    # under test); the default-policy blend is exercised separately below.
    replay_and_check(graph, h, backend, updates, fallback_ratio=1.0)


@pytest.mark.parametrize("h", [1, 2, 3])
def test_default_fallback_policy_is_exact_too(h):
    graph = gen.erdos_renyi_graph(18, 0.18, seed=9)
    updates = random_update_stream(graph, STREAM_LENGTH, seed=h)
    engine = replay_and_check(graph, h, "auto", updates)
    stats = engine.stats
    assert stats.incremental_repeels + stats.full_recomputes == stats.batches


@pytest.mark.parametrize("backend", ["dict", "csr"])
def test_batched_prefixes_match_from_scratch(backend):
    graph = gen.relaxed_caveman_graph(4, 5, 0.15, seed=1)
    updates = random_update_stream(graph, 24, new_vertex_p=0.1, seed=2)
    engine = DynamicKHCore(graph, h=2, backend=backend, fallback_ratio=1.0)
    for offset in range(0, len(updates), 6):
        engine.apply_batch(updates[offset:offset + 6])
        expected = core_decomposition(engine.graph, 2).core_index
        assert engine.core_numbers() == expected


# --------------------------------------------------------------------- #
# hypothesis sweep: unstructured graphs and streams
# --------------------------------------------------------------------- #
MAX_VERTEX = 11

edge_strategy = st.tuples(
    st.integers(min_value=0, max_value=MAX_VERTEX),
    st.integers(min_value=0, max_value=MAX_VERTEX),
).filter(lambda pair: pair[0] != pair[1])

graph_strategy = st.lists(edge_strategy, min_size=0, max_size=20).map(Graph)

#: Raw update candidates; inapplicable ones (duplicate inserts, missing
#: deletes) are filtered against the evolving graph during replay.
raw_updates_strategy = st.lists(
    st.tuples(st.booleans(), edge_strategy), min_size=1, max_size=14)


@given(graph=graph_strategy, raw=raw_updates_strategy,
       h=st.integers(min_value=1, max_value=3))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_hypothesis_streams_stay_exact(graph, raw, h):
    engine = DynamicKHCore(graph, h=h, fallback_ratio=1.0)
    for is_insert, (u, v) in raw:
        if is_insert == engine.graph.has_edge(u, v):
            continue  # duplicate insert or missing delete: not applicable
        engine.apply("+" if is_insert else "-", u, v)
        expected = core_decomposition(engine.graph, h).core_index
        assert engine.core_numbers() == expected

"""End-to-end integration tests: dataset -> decomposition -> every application.

These tests exercise the whole public API on one realistic synthetic dataset,
checking the cross-component consistency properties the paper relies on
(Theorems 1, 3 and 4 all on the same decomposition, the landmark oracle built
from the innermost core, and the CLI-facing report object).
"""

import pytest

from repro.applications.coloring import (
    chromatic_number_upper_bound,
    distance_h_greedy_coloring,
    is_valid_distance_h_coloring,
)
from repro.applications.community import cocktail_party
from repro.applications.densest import average_h_degree, densest_core_approximation
from repro.applications.hclub import ITDBCSolver, is_h_club, maximum_h_club_with_core
from repro.applications.hclique import is_h_clique, maximum_h_clique
from repro.applications.landmarks import LandmarkOracle, select_landmarks
from repro.core import core_decomposition, core_decomposition_with_report, core_spectrum
from repro.datasets import load_dataset
from repro.traversal.components import largest_component
from repro.traversal.hneighborhood import all_h_degrees

H = 2


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("caHe", scale="tiny", seed=1)


@pytest.fixture(scope="module")
def decomposition(dataset):
    return core_decomposition(dataset, H)


class TestEndToEnd:
    def test_every_core_satisfies_its_degree_requirement(self, dataset, decomposition):
        for k in range(1, decomposition.degeneracy + 1):
            members = decomposition.core(k)
            if not members:
                continue
            degrees = all_h_degrees(dataset, H, alive=members, vertices=members)
            assert min(degrees.values()) >= k

    def test_coloring_respects_theorem1_bound_here(self, dataset, decomposition):
        colors = distance_h_greedy_coloring(dataset, H)
        assert is_valid_distance_h_coloring(dataset, H, colors)
        assert chromatic_number_upper_bound(dataset, H) == 1 + decomposition.degeneracy

    def test_max_hclub_inside_core_and_bounded_by_clique(self, dataset, decomposition):
        club = maximum_h_club_with_core(dataset, H, solver=ITDBCSolver(),
                                        decomposition=decomposition)
        assert club.optimal
        assert is_h_club(dataset, club.vertices, H)
        # Theorem 3: the club sits inside the (size-1, h)-core.
        assert club.vertices <= decomposition.core(club.size - 1)
        # Theorem 2 chain: the maximum h-club is no larger than the maximum
        # h-clique, which is no larger than 1 + degeneracy.
        clique = maximum_h_clique(dataset, H)
        assert is_h_clique(dataset, clique, H)
        assert club.size <= len(clique) <= 1 + decomposition.degeneracy

    def test_densest_core_is_at_least_as_dense_as_innermost(self, dataset, decomposition):
        result = densest_core_approximation(dataset, H, decomposition=decomposition)
        innermost_density = average_h_degree(dataset, decomposition.innermost_core(), H)
        assert result.density >= innermost_density - 1e-9
        assert result.vertices

    def test_community_of_innermost_vertex_is_its_core_component(self, dataset, decomposition):
        vertex = next(iter(decomposition.innermost_core()))
        community = cocktail_party(dataset, [vertex], H, decomposition=decomposition)
        assert community.k == decomposition.degeneracy
        assert vertex in community.vertices

    def test_landmark_oracle_from_innermost_core(self, dataset, decomposition):
        landmarks = select_landmarks(dataset, 4, strategy="max-core", h=H, seed=0,
                                     decomposition=decomposition)
        oracle = LandmarkOracle(dataset, landmarks)
        component = sorted(largest_component(dataset), key=repr)
        s, t = component[0], component[-1]
        lower, upper = oracle.bounds(s, t)
        assert lower is not None and upper is not None and lower <= upper

    def test_spectrum_is_consistent_with_single_h_runs(self, dataset, decomposition):
        spectrum = core_spectrum(dataset, (1, H))
        assert spectrum.decompositions[H].core_index == decomposition.core_index

    def test_report_wrapper_consistency(self, dataset, decomposition):
        report = core_decomposition_with_report(dataset, H, algorithm="h-LB+UB",
                                                dataset_name="caHe-tiny")
        assert report.result.core_index == decomposition.core_index
        assert report.visits > 0
        assert report.as_row()["dataset"] == "caHe-tiny"

"""Property-based tests (hypothesis) for the core invariants of the paper.

Random small graphs are generated from edge lists; on every one of them we
check the structural properties the paper proves:

* Property 1-2: the (k,h)-cores are unique and nested.
* For h = 1 the decomposition equals the classic core decomposition
  (networkx as oracle).
* The three exact algorithms agree with the naive reference.
* LB2(v) <= core(v) <= UB(v) <= deg^h(v) (Observations 1-2, §4.4).
* The core index is monotone in h.
* Theorem 3: every h-club of size k+1 lies inside the (k,h)-core.
"""

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.applications.hclub import drop_heuristic_h_club, is_h_club
from repro.core import (
    core_decomposition,
    h_bz,
    h_lb,
    h_lb_ub,
    lower_bound_lb2,
    naive_core_decomposition,
    upper_bound,
)
from repro.graph import Graph
from repro.traversal.hneighborhood import all_h_degrees

from helpers import to_networkx

MAX_VERTEX = 13

edge_strategy = st.tuples(
    st.integers(min_value=0, max_value=MAX_VERTEX),
    st.integers(min_value=0, max_value=MAX_VERTEX),
).filter(lambda pair: pair[0] != pair[1])

graph_strategy = st.lists(edge_strategy, min_size=0, max_size=28).map(Graph)

h_strategy = st.integers(min_value=2, max_value=4)

COMMON_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(graph=graph_strategy, h=h_strategy)
@settings(**COMMON_SETTINGS)
def test_algorithms_agree_with_naive(graph, h):
    expected = naive_core_decomposition(graph, h).core_index
    assert h_bz(graph, h).core_index == expected
    assert h_lb(graph, h).core_index == expected
    assert h_lb_ub(graph, h).core_index == expected


@given(graph=graph_strategy)
@settings(**COMMON_SETTINGS)
def test_h1_matches_networkx(graph):
    if graph.num_vertices == 0:
        return
    expected = nx.core_number(to_networkx(graph))
    assert core_decomposition(graph, 1).core_index == expected
    assert h_lb(graph, 1).core_index == expected


@given(graph=graph_strategy, h=h_strategy)
@settings(**COMMON_SETTINGS)
def test_cores_are_nested(graph, h):
    decomposition = core_decomposition(graph, h, algorithm="h-LB")
    for k in range(decomposition.degeneracy):
        assert decomposition.core(k + 1) <= decomposition.core(k)


@given(graph=graph_strategy, h=h_strategy)
@settings(**COMMON_SETTINGS)
def test_bounds_sandwich_core_index(graph, h):
    if graph.num_vertices == 0:
        return
    cores = core_decomposition(graph, h, algorithm="h-LB").core_index
    lb2 = lower_bound_lb2(graph, h)
    ub = upper_bound(graph, h)
    degrees = all_h_degrees(graph, h)
    for v in graph.vertices():
        assert lb2[v] <= cores[v] <= ub[v] <= degrees[v]


@given(graph=graph_strategy)
@settings(**COMMON_SETTINGS)
def test_core_index_monotone_in_h(graph):
    if graph.num_vertices == 0:
        return
    previous = core_decomposition(graph, 1).core_index
    for h in (2, 3):
        current = core_decomposition(graph, h, algorithm="h-LB").core_index
        assert all(current[v] >= previous[v] for v in graph.vertices())
        previous = current


@given(graph=graph_strategy, h=h_strategy)
@settings(**COMMON_SETTINGS)
def test_every_vertex_meets_its_core_degree_requirement(graph, h):
    decomposition = core_decomposition(graph, h, algorithm="h-LB")
    for k in range(1, decomposition.degeneracy + 1):
        members = decomposition.core(k)
        if not members:
            continue
        degrees = all_h_degrees(graph, h, alive=members, vertices=members)
        assert all(d >= k for d in degrees.values())


@given(graph=graph_strategy, h=st.integers(min_value=2, max_value=3))
@settings(**COMMON_SETTINGS)
def test_hclub_contained_in_core(graph, h):
    if graph.num_vertices == 0:
        return
    club = drop_heuristic_h_club(graph, h)
    assert is_h_club(graph, club, h)
    if len(club) <= 1:
        return
    decomposition = core_decomposition(graph, h, algorithm="h-LB")
    k = len(club) - 1
    assert club <= decomposition.core(k)


@given(graph=graph_strategy, h=h_strategy)
@settings(**COMMON_SETTINGS)
def test_subgraph_core_never_exceeds_full_graph_core(graph, h):
    vertices = sorted(graph.vertices(), key=repr)
    if len(vertices) < 4:
        return
    subset = vertices[: len(vertices) // 2]
    subgraph = graph.subgraph(subset)
    full = core_decomposition(graph, h, algorithm="h-LB").core_index
    partial = core_decomposition(subgraph, h, algorithm="h-LB").core_index
    assert all(partial[v] <= full[v] for v in subgraph.vertices())

"""Tests for the shared-memory multiprocessing engine (:mod:`repro.parallel`).

Two batteries:

* **Executor identity** — serial, thread and process executors produce
  identical core numbers across every generator family for h in {1, 2, 3}
  (the §4.6 acceptance property: parallelization must never change the
  decomposition).
* **Lifecycle** — shared-memory blocks are unlinked on normal close, on
  worker exception and on ``KeyboardInterrupt``; refresh re-exports under a
  new generation; ``fork`` and ``spawn`` start methods agree; no
  ``/dev/shm`` segment outlives a facade call.
"""

import multiprocessing
import os

import pytest
from multiprocessing import shared_memory

from repro.core import compute_h_degrees, core_decomposition, h_bz
from repro.core.backends import CSREngine
from repro.errors import ParameterError
from repro.graph import Graph
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi_graph
from repro.instrumentation import Counters
from repro.parallel import SharedCSRExport, SharedCSRView, SharedMemoryExecutor

from test_dynamic_properties import FAMILIES


def _assert_unlinked(name):
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


# --------------------------------------------------------------------- #
# executor identity
# --------------------------------------------------------------------- #
class TestExecutorIdentity:
    @pytest.mark.parametrize("h", [1, 2, 3])
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_identical_core_numbers_across_executors(self, family, h):
        graph = FAMILIES[family]()
        expected = core_decomposition(graph, h, backend="csr",
                                      executor="serial").core_index
        for executor in ("thread", "process"):
            got = core_decomposition(graph, h, backend="csr",
                                     num_workers=2, executor=executor)
            assert got.core_index == expected, (family, h, executor)

    @pytest.mark.parametrize("algorithm", ["h-BZ", "h-LB", "h-LB+UB"])
    def test_identical_per_algorithm(self, algorithm):
        graph = erdos_renyi_graph(40, 0.12, seed=7)
        expected = core_decomposition(graph, 2, algorithm=algorithm,
                                      backend="csr").core_index
        got = core_decomposition(graph, 2, algorithm=algorithm,
                                 backend="csr", num_workers=2,
                                 executor="process").core_index
        assert got == expected

    def test_counters_identical_serial_vs_process(self):
        graph = erdos_renyi_graph(35, 0.12, seed=9)
        serial_counters = Counters()
        core_decomposition(graph, 2, algorithm="h-BZ", backend="csr",
                           counters=serial_counters)
        process_counters = Counters()
        core_decomposition(graph, 2, algorithm="h-BZ", backend="csr",
                           num_workers=2, executor="process",
                           counters=process_counters)
        assert process_counters.vertices_visited == \
            serial_counters.vertices_visited
        assert process_counters.hdegree_computations == \
            serial_counters.hdegree_computations

    def test_dict_engine_caches_process_delegate(self):
        """Dict-backend process passes share one CSR delegate (and pool)."""
        from repro.core.backends import DictEngine
        graph = erdos_renyi_graph(30, 0.15, seed=12)
        engine = DictEngine(graph)
        try:
            first = engine.bulk_h_degrees(2, num_threads=2,
                                          executor="process")
            delegate = engine._process_delegate
            assert delegate is not None
            assert first == engine.bulk_h_degrees(2)
            second = engine.bulk_h_degrees(3, num_threads=2,
                                           executor="process")
            assert engine._process_delegate is delegate  # no re-spin
            assert second == engine.bulk_h_degrees(3)
            u, v = 0, 13
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
            else:
                graph.add_edge(u, v)
            engine.refresh(touched=[u, v])
            third = engine.bulk_h_degrees(2, num_threads=2,
                                          executor="process")
            assert third == compute_h_degrees(graph, 2)
        finally:
            engine.close()

    def test_pool_survives_across_bulk_passes(self):
        """One engine reuses its pool (and export) across dispatches."""
        graph = erdos_renyi_graph(40, 0.12, seed=3)
        engine = CSREngine(graph)
        try:
            first = engine.bulk_h_degrees(2, num_threads=2,
                                          executor="process")
            name = engine._shm_pool.shm_name
            second = engine.bulk_h_degrees(3, num_threads=2,
                                           executor="process")
            assert engine._shm_pool.shm_name == name  # same export reused
            assert first == engine.bulk_h_degrees(2)
            assert second == engine.bulk_h_degrees(3)
        finally:
            engine.close()


# --------------------------------------------------------------------- #
# shared-memory lifecycle
# --------------------------------------------------------------------- #
class TestLifecycle:
    def test_unlinked_on_normal_close(self):
        graph = erdos_renyi_graph(30, 0.15, seed=1)
        engine = CSREngine(graph)
        engine.bulk_h_degrees(2, num_threads=2, executor="process")
        name = engine._shm_pool.shm_name
        assert name is not None
        engine.close()
        _assert_unlinked(name)

    def test_close_is_idempotent_and_engine_reusable(self):
        graph = erdos_renyi_graph(25, 0.15, seed=2)
        engine = CSREngine(graph)
        serial = engine.bulk_h_degrees(2)
        engine.bulk_h_degrees(2, num_threads=2, executor="process")
        engine.close()
        engine.close()
        # A later process dispatch simply spins a fresh pool up.
        assert engine.bulk_h_degrees(2, num_threads=2,
                                     executor="process") == serial
        engine.close()

    def test_unlinked_on_worker_exception(self):
        csr = CSRGraph.from_graph(erdos_renyi_graph(20, 0.2, seed=3))
        pool = SharedMemoryExecutor(2)
        pool.ensure_export(csr)
        name = pool.shm_name
        with pytest.raises(IndexError):
            # An out-of-range vertex index makes the worker BFS raise.
            pool.bulk_h_degrees(csr, 2, [csr.num_vertices + 5])
        _assert_unlinked(name)
        assert pool.shm_name is None

    def test_unlinked_on_keyboard_interrupt(self, monkeypatch):
        csr = CSRGraph.from_graph(erdos_renyi_graph(20, 0.2, seed=4))
        pool = SharedMemoryExecutor(2)
        pool.ensure_export(csr)
        name = pool.shm_name
        import concurrent.futures

        def interrupted(self, timeout=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(concurrent.futures.Future, "result", interrupted)
        with pytest.raises(KeyboardInterrupt):
            pool.bulk_h_degrees(csr, 2, list(range(csr.num_vertices)))
        monkeypatch.undo()
        _assert_unlinked(name)

    def test_closed_executor_rejects_reexport(self):
        csr = CSRGraph.from_graph(erdos_renyi_graph(10, 0.3, seed=5))
        pool = SharedMemoryExecutor(2)
        pool.ensure_export(csr)
        pool.close()
        with pytest.raises(ParameterError):
            pool.ensure_export(csr)

    def test_refresh_reexports_under_new_generation(self):
        graph = erdos_renyi_graph(30, 0.15, seed=6)
        engine = CSREngine(graph)
        try:
            engine.bulk_h_degrees(2, num_threads=2, executor="process")
            old_name = engine._shm_pool.shm_name
            u, v = 0, 17
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
            else:
                graph.add_edge(u, v)
            engine.refresh(touched=[u, v])
            # The stale block is unlinked immediately; the new snapshot is
            # exported lazily by the next dispatch (a mutation stream with
            # no process dispatches must not pay an export per refresh).
            _assert_unlinked(old_name)
            assert engine._shm_pool.shm_name is None
            got = engine.bulk_h_degrees(2, num_threads=2,
                                        executor="process")
            assert engine._shm_pool.shm_name not in (None, old_name)
            assert engine.to_labels(got) == compute_h_degrees(graph, 2)
        finally:
            engine.close()

    def test_engine_recovers_after_failed_dispatch(self):
        """A worker failure must not brick the engine's process path."""
        graph = erdos_renyi_graph(25, 0.15, seed=11)
        engine = CSREngine(graph)
        try:
            serial = engine.bulk_h_degrees(2)
            pool = engine._process_pool(2)
            with pytest.raises(IndexError):
                pool.bulk_h_degrees(engine.csr, 2,
                                    [engine.csr.num_vertices + 7])
            assert pool.closed
            # The next process request discards the dead pool and recovers.
            got = engine.bulk_h_degrees(2, num_threads=2,
                                        executor="process")
            assert got == serial
        finally:
            engine.close()

    def test_facade_leaves_no_dev_shm_segments(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        before = set(os.listdir("/dev/shm"))
        graph = erdos_renyi_graph(40, 0.1, seed=8)
        core_decomposition(graph, 2, algorithm="h-BZ", backend="csr",
                           num_workers=2, executor="process")
        leaked = {name for name in set(os.listdir("/dev/shm")) - before
                  if name.startswith("psm_")}
        assert leaked == set()

    def test_fork_and_spawn_identical_core_numbers(self):
        graph = erdos_renyi_graph(30, 0.15, seed=10)
        expected = h_bz(graph, 2, backend="csr").core_index
        available = multiprocessing.get_all_start_methods()
        tested = 0
        for method in ("fork", "spawn"):
            if method not in available:
                continue
            engine = CSREngine(graph)
            engine._process_pool(2, start_method=method)
            try:
                got = h_bz(graph, 2, num_threads=2, backend=engine,
                           executor="process").core_index
                assert got == expected, method
            finally:
                engine.close()
            tested += 1
        assert tested >= 1


# --------------------------------------------------------------------- #
# export/view plumbing
# --------------------------------------------------------------------- #
class TestSharedCSRBlocks:
    def test_view_mirrors_csr_arrays(self):
        csr = CSRGraph.from_graph(Graph([(0, 1), (1, 2), (2, 0), (2, 3)]))
        export = SharedCSRExport(csr, generation=1)
        try:
            view = SharedCSRView(export.layout())
            try:
                assert list(view.indptr) == list(csr.indptr)
                assert list(view.adjacency) == list(csr.adjacency)
                assert view.num_vertices == csr.num_vertices
            finally:
                view.close()
        finally:
            export.close()

    def test_alive_region_roundtrip(self):
        csr = CSRGraph.from_graph(Graph([(0, 1), (1, 2)]))
        export = SharedCSRExport(csr, generation=1)
        try:
            export.write_alive(bytes([1, 0, 1]))
            view = SharedCSRView(export.layout())
            try:
                assert bytes(view.alive_region) == bytes([1, 0, 1])
            finally:
                view.close()
        finally:
            export.close()

    def test_write_alive_rejects_wrong_length(self):
        csr = CSRGraph.from_graph(Graph([(0, 1)]))
        export = SharedCSRExport(csr, generation=1)
        try:
            with pytest.raises(ValueError):
                export.write_alive(b"\x01")
        finally:
            export.close()

    def test_empty_graph_export(self):
        csr = CSRGraph.from_graph(Graph())
        export = SharedCSRExport(csr, generation=1)
        name = export.name
        export.close()
        _assert_unlinked(name)

"""Tests for graph statistics (Table 1 machinery)."""

import pytest

from repro.graph import Graph
from repro.graph.generators import complete_graph, grid_graph, path_graph, star_graph
from repro.graph.stats import (
    GraphSummary,
    average_degree,
    degree_histogram,
    density,
    isolated_vertices,
    max_degree,
    summarize,
    summarize_many,
)


class TestScalarStats:
    def test_density_complete(self):
        assert density(complete_graph(5)) == pytest.approx(1.0)

    def test_density_empty_and_tiny(self):
        assert density(Graph()) == 0.0
        assert density(Graph(vertices=[1])) == 0.0

    def test_average_degree(self):
        assert average_degree(path_graph(4)) == pytest.approx(1.5)
        assert average_degree(Graph()) == 0.0

    def test_max_degree(self):
        assert max_degree(star_graph(6)) == 6
        assert max_degree(Graph()) == 0

    def test_degree_histogram(self):
        hist = degree_histogram(star_graph(4))
        assert hist[1] == 4  # four leaves
        assert hist[4] == 1  # one center
        assert degree_histogram(Graph()) == []

    def test_isolated_vertices(self):
        g = path_graph(3)
        g.add_vertex(7)
        assert isolated_vertices(g) == [7]


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize(grid_graph(3, 3), name="grid")
        assert isinstance(summary, GraphSummary)
        assert summary.name == "grid"
        assert summary.num_vertices == 9
        assert summary.num_edges == 12
        assert summary.diameter == 4
        assert summary.num_components == 1

    def test_summary_as_row(self):
        row = summarize(path_graph(4), name="p4").as_row()
        assert row["dataset"] == "p4"
        assert row["|V|"] == 4
        assert row["diam"] == 3

    def test_disconnected_reports_largest_component_diameter(self):
        g = Graph([(0, 1), (1, 2), (2, 3), (10, 11)])
        summary = summarize(g, name="two-parts")
        assert summary.num_components == 2
        assert summary.diameter == 3

    def test_empty_graph(self):
        summary = summarize(Graph(), name="empty")
        assert summary.num_vertices == 0
        assert summary.diameter == 0

    def test_large_graph_uses_estimate(self):
        # Force the estimation path with a small limit; on a path the double
        # sweep estimate is exact, so the value is still right.
        summary = summarize(path_graph(50), name="p50", exact_diameter_limit=10)
        assert summary.diameter == 49

    def test_summarize_many(self):
        rows = summarize_many({"a": path_graph(3), "b": complete_graph(3)})
        assert [s.name for s in rows] == ["a", "b"]

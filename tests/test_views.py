"""Unit tests for SubgraphView."""

import pytest

from repro.errors import VertexNotFoundError
from repro.graph import Graph, SubgraphView


@pytest.fixture
def base_graph():
    return Graph([(1, 2), (2, 3), (3, 4), (4, 1), (2, 4)])


class TestSubgraphView:
    def test_vertex_filtering(self, base_graph):
        view = SubgraphView(base_graph, [1, 2, 3, 99])
        assert set(view.vertices()) == {1, 2, 3}
        assert 99 not in view
        assert len(view) == 3

    def test_neighbors_restricted(self, base_graph):
        view = SubgraphView(base_graph, [1, 2, 3])
        assert view.neighbors(2) == {1, 3}
        assert view.degree(2) == 2

    def test_neighbors_outside_view_raises(self, base_graph):
        view = SubgraphView(base_graph, [1, 2])
        with pytest.raises(VertexNotFoundError):
            view.neighbors(4)

    def test_has_edge(self, base_graph):
        view = SubgraphView(base_graph, [1, 2, 3])
        assert view.has_edge(1, 2)
        assert not view.has_edge(1, 4)  # 4 is not in the view

    def test_edges_and_counts(self, base_graph):
        view = SubgraphView(base_graph, [1, 2, 4])
        edges = {frozenset(e) for e in view.edges()}
        assert edges == {frozenset({1, 2}), frozenset({1, 4}), frozenset({2, 4})}
        assert view.num_edges == 3
        assert view.num_vertices == 3

    def test_materialize(self, base_graph):
        view = SubgraphView(base_graph, [1, 2, 3])
        materialized = view.materialize()
        assert isinstance(materialized, Graph)
        assert materialized == base_graph.subgraph([1, 2, 3])

    def test_view_reflects_base_mutation(self, base_graph):
        view = SubgraphView(base_graph, [1, 2, 3])
        base_graph.add_edge(1, 3)
        assert view.has_edge(1, 3)

    def test_base_graph_property(self, base_graph):
        view = SubgraphView(base_graph, [1])
        assert view.base_graph is base_graph

    def test_repr(self, base_graph):
        view = SubgraphView(base_graph, [1, 2])
        assert "2" in repr(view)

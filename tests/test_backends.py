"""Backend equivalence: the CSR engine must reproduce the dict engine exactly.

The dict-of-sets :class:`Graph` path is the reference implementation; the CSR
backend (flat arrays + generation-trick BFS + byte-mask alive sets) must
return *identical* core numbers on every graph, for every algorithm and every
h — that equivalence is the whole contract of :mod:`repro.core.backends`.
"""

from __future__ import annotations

import pytest

from repro.core import (
    AliveMask,
    CSREngine,
    DictEngine,
    compute_h_degrees,
    core_decomposition,
    h_bz,
    h_lb,
    h_lb_ub,
    naive_core_decomposition,
    resolve_engine,
)
from repro.errors import ParameterError, VertexNotFoundError
from repro.graph import CSRGraph, Graph, csr_suitable
from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    planted_partition_graph,
    relaxed_caveman_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.instrumentation import Counters
from repro.traversal import csr_h_bounded_bfs, h_bounded_bfs

from helpers import random_vertex


def generator_battery():
    """Deterministic graphs from every synthetic generator family."""
    return {
        "complete_7": complete_graph(7),
        "cycle_12": cycle_graph(12),
        "path_9": path_graph(9),
        "star_8": star_graph(8),
        "grid_5x4": grid_graph(5, 4),
        "er_24": erdos_renyi_graph(24, 0.15, seed=1),
        "ba_25": barabasi_albert_graph(25, 2, seed=2),
        "ws_20": watts_strogatz_graph(20, 4, 0.2, seed=3),
        "caveman": relaxed_caveman_graph(4, 5, 0.1, seed=4),
        "partition": planted_partition_graph(3, 6, 0.6, 0.05, seed=5),
        "isolated_only": empty_graph(4),
        "empty": empty_graph(0),
    }


class TestCSRGraph:
    def test_structure_matches_graph(self):
        g = erdos_renyi_graph(30, 0.2, seed=7)
        csr = CSRGraph.from_graph(g)
        assert csr.num_vertices == g.num_vertices
        assert csr.num_edges == g.num_edges
        assert csr.indptr[0] == 0
        assert csr.indptr[-1] == len(csr.adjacency) == 2 * g.num_edges
        assert all(a <= b for a, b in zip(csr.indptr, csr.indptr[1:]))
        for v in g.vertices():
            assert csr.degree(csr.index(v)) == g.degree(v)
            assert csr.neighbors_of_label(v) == g.neighbors(v)

    def test_neighbor_indices_sorted_per_vertex(self):
        csr = CSRGraph.from_graph(relaxed_caveman_graph(3, 5, 0.2, seed=0))
        for i in range(csr.num_vertices):
            neighbors = csr.neighbors(i)
            assert neighbors == sorted(neighbors)

    def test_label_roundtrip_arbitrary_hashables(self):
        g = Graph([("a", "b"), ("b", (1, 2)), ((1, 2), "a")])
        g.add_vertex("lonely")
        csr = CSRGraph.from_graph(g)
        assert {csr.label(csr.index(v)) for v in g.vertices()} == set(g.vertices())
        assert csr.neighbors_of_label("b") == {"a", (1, 2)}
        assert csr.neighbors_of_label("lonely") == set()

    def test_edges_iterates_each_edge_once(self):
        g = cycle_graph(6)
        csr = CSRGraph.from_graph(g)
        edges = list(csr.edges())
        assert len(edges) == g.num_edges
        assert all(v < u for v, u in edges)

    def test_unknown_label_raises(self):
        csr = CSRGraph.from_graph(path_graph(3))
        with pytest.raises(VertexNotFoundError):
            csr.index(99)

    def test_csr_suitable_only_for_int_vertices(self):
        assert csr_suitable(path_graph(4))
        assert csr_suitable(empty_graph(0))
        assert not csr_suitable(Graph([("a", "b")]))
        assert not csr_suitable(Graph([(True, 2)]))


class TestArrayBFSEquivalence:
    @pytest.mark.parametrize("h", [1, 2, 3, None])
    def test_matches_dict_bfs_on_full_graph(self, h):
        g = erdos_renyi_graph(28, 0.15, seed=11)
        csr = CSRGraph.from_graph(g)
        for v in g.vertices():
            assert csr_h_bounded_bfs(csr, v, h) == h_bounded_bfs(g, v, h)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_dict_bfs_on_alive_subsets(self, seed):
        import random
        g = erdos_renyi_graph(26, 0.18, seed=seed)
        csr = CSRGraph.from_graph(g)
        rng = random.Random(seed)
        vertices = sorted(g.vertices())
        for _ in range(20):
            source = rng.choice(vertices)
            alive = set(rng.sample(vertices, 15)) | {source}
            for h in (1, 2, 3):
                assert (csr_h_bounded_bfs(csr, source, h, alive=alive)
                        == h_bounded_bfs(g, source, h, alive=alive))

    def test_source_not_alive_raises(self):
        g = path_graph(5)
        csr = CSRGraph.from_graph(g)
        with pytest.raises(VertexNotFoundError):
            csr_h_bounded_bfs(csr, 0, 2, alive={1, 2, 3})

    def test_unknown_alive_labels_ignored_like_dict_backend(self):
        g = Graph([(0, 1), (1, 2)])
        csr = CSRGraph.from_graph(g)
        alive = {0, 1, 99}
        assert (csr_h_bounded_bfs(csr, 0, 2, alive=alive)
                == h_bounded_bfs(g, 0, 2, alive=alive) == {0: 0, 1: 1})

    def test_counters_match_dict_backend(self):
        g = relaxed_caveman_graph(3, 5, 0.1, seed=9)
        csr = CSRGraph.from_graph(g)
        source = random_vertex(g)
        dict_counters, csr_counters = Counters(), Counters()
        h_bounded_bfs(g, source, 2, counters=dict_counters)
        csr_h_bounded_bfs(csr, source, 2, counters=csr_counters)
        assert csr_counters.bfs_calls == dict_counters.bfs_calls == 1
        assert csr_counters.vertices_visited == dict_counters.vertices_visited


class TestAliveMask:
    def test_set_protocol(self):
        alive = AliveMask.of(6, [0, 2, 4])
        assert len(alive) == 3 and bool(alive)
        assert 2 in alive and 1 not in alive
        assert sorted(alive) == [0, 2, 4]
        alive.discard(2)
        alive.discard(2)  # idempotent
        assert len(alive) == 2 and sorted(alive) == [0, 4]
        for i in (0, 4):
            alive.discard(i)
        assert not alive

    def test_discard_syncs_installed_sentinels(self):
        """A mask installed in a scratch must reflect later discards."""
        g = complete_graph(5)
        engine = CSREngine(g)
        alive = engine.full_alive()
        assert engine.h_degree(0, 1, alive) == 4
        alive.discard(3)
        assert engine.h_degree(0, 1, alive) == 3
        # Switching to the unrestricted context and back re-installs.
        assert engine.h_degree(0, 1, None) == 4
        assert engine.h_degree(0, 1, alive) == 3


class TestDeadSentinel:
    """The DEAD visit mark is an integer, and its protocol survives edge cases.

    PR 5 replaced the historical ``float("inf")`` sentinel with ``2**63 - 1``
    so the ``seen`` scratch is homogeneous-int in both the list scratch
    (:class:`ArrayBFS`) and the int64 ndarray scratch of the NumPy engine —
    which share :class:`AliveMask` objects and their sentinel upkeep.
    """

    def test_sentinel_is_int64_max(self):
        from repro.traversal.array_bfs import DEAD

        assert isinstance(DEAD, int)
        assert DEAD == 2**63 - 1

    def test_seen_scratch_stays_homogeneous_int(self):
        from repro.traversal.array_bfs import ArrayBFS

        g = path_graph(6)
        scratch = ArrayBFS(CSRGraph.from_graph(g))
        alive = AliveMask.of(6, [0, 1, 2, 3])
        scratch.run(0, 2, alive)
        alive.discard(3)
        assert all(isinstance(mark, int) for mark in scratch._seen)

    def test_generation_rollover_resets_scratch(self):
        from repro.traversal.array_bfs import DEAD, ArrayBFS

        g = cycle_graph(8)
        scratch = ArrayBFS(CSRGraph.from_graph(g))
        expected = scratch.run(0, 2)
        scratch._generation = DEAD - 1
        # Without the guard this stamp would equal the DEAD sentinel and
        # every vertex would look dead; with it the scratch reinstalls.
        assert scratch.run(0, 2) == expected
        assert scratch._generation == 1
        assert scratch.run(1, 2) == expected

    def test_generation_rollover_keeps_alive_mask_installed(self):
        from repro.traversal.array_bfs import DEAD, ArrayBFS

        g = complete_graph(6)
        scratch = ArrayBFS(CSRGraph.from_graph(g))
        alive = AliveMask.of(6, range(5))
        assert scratch.run(0, 1, alive) == 4
        scratch._generation = DEAD - 1
        assert scratch.run(0, 1, alive) == 4
        # Discards performed after the rollover reinstall still sync.
        alive.discard(4)
        assert scratch.run(0, 1, alive) == 3


class TestEngineResolution:
    def test_auto_picks_csr_for_integer_graphs(self):
        assert isinstance(resolve_engine(path_graph(4), "auto"), CSREngine)
        assert isinstance(resolve_engine(Graph([("a", "b")]), "auto"), DictEngine)

    def test_explicit_names(self):
        g = path_graph(4)
        assert isinstance(resolve_engine(g, "dict"), DictEngine)
        assert isinstance(resolve_engine(g, "csr"), CSREngine)

    def test_engine_instances_pass_through(self):
        g = path_graph(4)
        engine = CSREngine(g)
        assert resolve_engine(g, engine) is engine
        with pytest.raises(ParameterError):
            resolve_engine(path_graph(3), engine)

    def test_stale_csr_engine_rejected_after_mutation(self):
        g = path_graph(4)
        engine = CSREngine(g)
        g.add_edge(0, 3)
        with pytest.raises(ParameterError):
            resolve_engine(g, engine)
        with pytest.raises(ParameterError):
            h_bz(g, 2, backend=engine)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError):
            resolve_engine(path_graph(3), "nope")
        with pytest.raises(ParameterError):
            core_decomposition(path_graph(3), 2, backend="nope")


class TestBackendEquivalence:
    """The acceptance property: identical core numbers on every test graph."""

    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_facade_backends_agree_across_generators(self, h):
        for name, graph in generator_battery().items():
            expected = core_decomposition(graph, h, backend="dict").core_index
            actual = core_decomposition(graph, h, backend="csr").core_index
            assert actual == expected, f"{name}, h={h}"

    @pytest.mark.parametrize("algorithm", ["h-BZ", "h-LB", "h-LB+UB"])
    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_each_algorithm_agrees(self, algorithm, h):
        for name, graph in generator_battery().items():
            expected = core_decomposition(graph, h, algorithm=algorithm,
                                          backend="dict").core_index
            actual = core_decomposition(graph, h, algorithm=algorithm,
                                        backend="csr").core_index
            assert actual == expected, f"{name}, {algorithm}, h={h}"

    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_csr_agrees_with_naive_oracle(self, h):
        graph = relaxed_caveman_graph(3, 4, 0.15, seed=6)
        expected = naive_core_decomposition(graph, h).core_index
        for algorithm in ("h-BZ", "h-LB", "h-LB+UB"):
            result = core_decomposition(graph, h, algorithm=algorithm,
                                        backend="csr")
            assert result.core_index == expected

    def test_auto_backend_agrees_on_fixture(self, paper_style_graph):
        for h in (1, 2, 3):
            auto = core_decomposition(paper_style_graph, h, backend="auto")
            ref = core_decomposition(paper_style_graph, h, backend="dict")
            assert auto.core_index == ref.core_index

    def test_string_labeled_graph_via_explicit_csr(self):
        graph = Graph([("a", "b"), ("b", "c"), ("c", "a"), ("c", "d"),
                       ("d", "e")])
        for h in (1, 2, 3):
            expected = core_decomposition(graph, h, backend="dict").core_index
            assert core_decomposition(graph, h,
                                      backend="csr").core_index == expected

    def test_hlbub_partition_sizes_agree(self):
        graph = erdos_renyi_graph(30, 0.15, seed=8)
        expected = h_lb_ub(graph, 2).core_index
        for partition_size in (1, 2, 4):
            result = h_lb_ub(graph, 2, partition_size=partition_size,
                             backend="csr")
            assert result.core_index == expected

    def test_removal_order_is_complete_on_csr(self):
        graph = erdos_renyi_graph(20, 0.2, seed=3)
        for algorithm in (h_bz, h_lb):
            order = algorithm(graph, 2, backend="csr").removal_order
            assert sorted(order) == sorted(graph.vertices())

    def test_counters_populated_on_csr(self):
        counters = Counters()
        h_bz(erdos_renyi_graph(20, 0.2, seed=1), 2, counters=counters,
             backend="csr")
        assert counters.bfs_calls > 0
        assert counters.vertices_visited > 0
        assert counters.hdegree_computations > 0

    def test_engine_reuse_across_decompositions(self):
        graph = erdos_renyi_graph(25, 0.15, seed=4)
        engine = resolve_engine(graph, "csr")
        for h in (2, 3):
            expected = core_decomposition(graph, h, backend="dict").core_index
            assert core_decomposition(graph, h,
                                      backend=engine).core_index == expected


class TestBulkHDegrees:
    def test_compute_h_degrees_backend_parity(self):
        graph = erdos_renyi_graph(30, 0.15, seed=2)
        reference = compute_h_degrees(graph, 2)
        assert compute_h_degrees(graph, 2, backend="csr") == reference
        assert compute_h_degrees(graph, 2, backend="auto") == reference

    def test_threaded_csr_bulk_matches_sequential(self):
        graph = erdos_renyi_graph(40, 0.12, seed=5)
        sequential = Counters()
        threaded = Counters()
        a = compute_h_degrees(graph, 2, backend="csr", counters=sequential)
        b = compute_h_degrees(graph, 2, backend="csr", num_threads=4,
                              counters=threaded)
        assert a == b
        assert threaded.vertices_visited == sequential.vertices_visited
        assert threaded.hdegree_computations == sequential.hdegree_computations

    def test_alive_and_vertices_restrictions(self):
        graph = erdos_renyi_graph(30, 0.15, seed=6)
        vertices = sorted(graph.vertices())
        alive = set(vertices[:20])
        targets = vertices[5:15]
        reference = compute_h_degrees(graph, 2, vertices=targets, alive=alive)
        assert compute_h_degrees(graph, 2, vertices=targets, alive=alive,
                                 backend="csr") == reference


class TestCSRAutoThreshold:
    """The csr_suitable size gate: keyword > env var > default."""

    def test_keyword_threshold(self):
        g = path_graph(4)
        assert csr_suitable(g, min_vertices=0)
        assert csr_suitable(g, min_vertices=4)
        assert not csr_suitable(g, min_vertices=5)

    def test_env_var_threshold(self, monkeypatch):
        g = path_graph(4)
        monkeypatch.setenv("KH_CORE_CSR_THRESHOLD", "100")
        assert not csr_suitable(g)
        assert isinstance(resolve_engine(g, "auto"), DictEngine)
        monkeypatch.setenv("KH_CORE_CSR_THRESHOLD", "4")
        assert csr_suitable(g)
        assert isinstance(resolve_engine(g, "auto"), CSREngine)

    def test_keyword_overrides_env_var(self, monkeypatch):
        monkeypatch.setenv("KH_CORE_CSR_THRESHOLD", "100")
        assert csr_suitable(path_graph(4), min_vertices=0)

    def test_explicit_csr_request_bypasses_threshold(self, monkeypatch):
        monkeypatch.setenv("KH_CORE_CSR_THRESHOLD", "100")
        assert isinstance(resolve_engine(path_graph(4), "csr"), CSREngine)

    def test_invalid_env_var_warns_and_falls_back(self, monkeypatch):
        # Invalid deployment values degrade to the default policy instead of
        # crashing every decomposition entry point (PR 5 hardening).
        monkeypatch.setenv("KH_CORE_CSR_THRESHOLD", "many")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert csr_suitable(path_graph(4))
        monkeypatch.setenv("KH_CORE_CSR_THRESHOLD", "-3")
        with pytest.warns(RuntimeWarning, match="must be >= 0"):
            assert csr_suitable(path_graph(4))

    def test_negative_keyword_rejected(self):
        with pytest.raises(ParameterError):
            csr_suitable(path_graph(4), min_vertices=-1)

    def test_resolved_backend_name(self, monkeypatch):
        from repro.core.backends import resolved_backend_name
        g = path_graph(4)
        assert resolved_backend_name(g, "auto") == "csr"
        assert resolved_backend_name(g, "dict") == "dict"
        assert resolved_backend_name(g, CSREngine(g)) == "csr"
        monkeypatch.setenv("KH_CORE_CSR_THRESHOLD", "100")
        assert resolved_backend_name(g, "auto") == "dict"
        with pytest.raises(ParameterError):
            resolved_backend_name(g, "gpu")


class TestNumpyAutoThreshold:
    """KH_CORE_NUMPY_THRESHOLD: the auto ladder's numpy step-up gate."""

    def test_default_and_keyword(self):
        from repro.graph.csr import (
            DEFAULT_NUMPY_AUTO_THRESHOLD,
            resolve_numpy_threshold,
        )

        assert resolve_numpy_threshold() == DEFAULT_NUMPY_AUTO_THRESHOLD
        assert resolve_numpy_threshold(7) == 7
        with pytest.raises(ParameterError):
            resolve_numpy_threshold(-1)

    def test_env_var_overrides_default(self, monkeypatch):
        from repro.graph.csr import resolve_numpy_threshold

        monkeypatch.setenv("KH_CORE_NUMPY_THRESHOLD", "9000")
        assert resolve_numpy_threshold() == 9000
        # The keyword still wins over the environment.
        assert resolve_numpy_threshold(3) == 3

    def test_invalid_env_var_warns_and_falls_back(self, monkeypatch):
        from repro.graph.csr import (
            DEFAULT_NUMPY_AUTO_THRESHOLD,
            resolve_numpy_threshold,
        )

        monkeypatch.setenv("KH_CORE_NUMPY_THRESHOLD", "huge")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert (resolve_numpy_threshold()
                    == DEFAULT_NUMPY_AUTO_THRESHOLD)
        monkeypatch.setenv("KH_CORE_NUMPY_THRESHOLD", "-2")
        with pytest.warns(RuntimeWarning, match="must be >= 0"):
            assert (resolve_numpy_threshold()
                    == DEFAULT_NUMPY_AUTO_THRESHOLD)

    def test_invalid_env_var_does_not_break_auto_resolution(self,
                                                            monkeypatch):
        """A typo in the deployment env degrades to the default policy."""
        from repro.core import backends

        # Force the ladder to consult the numpy threshold even when NumPy
        # is not installed (the fallback default keeps a 4-vertex graph on
        # CSR either way, so no NumpyEngine is ever built).
        monkeypatch.setattr(backends, "numpy_available", lambda: True)
        monkeypatch.setenv("KH_CORE_NUMPY_THRESHOLD", "not-a-number")
        g = path_graph(4)
        with pytest.warns(RuntimeWarning):
            engine = resolve_engine(g, "auto")
        assert isinstance(engine, CSREngine)


class TestCSRDeltaRebuild:
    """CSRGraph.rebuilt / CSREngine.refresh: stale snapshots catch up."""

    def _assert_same_topology(self, csr, graph):
        fresh = CSRGraph.from_graph(graph)
        for v in graph.vertices():
            assert csr.neighbors_of_label(v) == fresh.neighbors_of_label(v)
        assert csr.num_vertices == graph.num_vertices
        assert csr.num_edges == graph.num_edges

    def test_rebuilt_after_edge_changes(self):
        g = erdos_renyi_graph(20, 0.2, seed=2)
        csr = CSRGraph.from_graph(g)
        g.add_edge(0, 19)
        g.remove_edge(*next(iter(g.edges())))
        touched = {0, 19} | set(range(20))  # superset of changed rows is fine
        self._assert_same_topology(csr.rebuilt(g, touched), g)

    def test_rebuilt_preserves_existing_indices(self):
        g = path_graph(6)
        csr = CSRGraph.from_graph(g)
        g.add_edge(0, 5)
        rebuilt = csr.rebuilt(g, {0, 5})
        for v in range(6):
            assert rebuilt.index(v) == csr.index(v)

    def test_rebuilt_appends_new_vertices(self):
        g = path_graph(4)
        csr = CSRGraph.from_graph(g)
        g.add_edge(3, 99)
        rebuilt = csr.rebuilt(g, {3, 99})
        assert rebuilt.index(99) == 4
        self._assert_same_topology(rebuilt, g)

    def test_rebuilt_matches_from_graph_under_random_mutations(self):
        # Span-copy stress: adjacent touched rows, touched rows at both
        # ends, appended vertices and untouched runs must all reassemble
        # into exactly the arrays a fresh build produces.
        import random
        rng = random.Random(7)
        g = erdos_renyi_graph(30, 0.15, seed=6)
        for round_number in range(25):
            csr = CSRGraph.from_graph(g)
            touched = set()
            for _ in range(rng.randint(1, 4)):
                if rng.random() < 0.3:
                    new = 100 + round_number * 10 + rng.randint(0, 9)
                    anchor = rng.choice(sorted(g.vertices(), key=repr))
                    if new != anchor and not g.has_edge(new, anchor):
                        g.add_edge(new, anchor)
                        touched.update((new, anchor))
                elif rng.random() < 0.5 and g.num_edges:
                    u, v = rng.choice(sorted(g.edges(), key=repr))
                    g.remove_edge(u, v)
                    touched.update((u, v))
                else:
                    u, v = rng.sample(sorted(g.vertices(), key=repr), 2)
                    if not g.has_edge(u, v):
                        g.add_edge(u, v)
                        touched.update((u, v))
            rebuilt = csr.rebuilt(g, touched)
            fresh = CSRGraph.from_graph(g)
            assert rebuilt.labels[:csr.num_vertices] == csr.labels
            assert rebuilt.num_vertices == fresh.num_vertices
            assert rebuilt.num_edges == fresh.num_edges
            for v in g.vertices():
                assert rebuilt.neighbors_of_label(v) == \
                    fresh.neighbors_of_label(v)

    def test_rebuilt_falls_back_on_vertex_removal(self):
        g = path_graph(5)
        csr = CSRGraph.from_graph(g)
        g.remove_vertex(2)
        rebuilt = csr.rebuilt(g, {2})
        self._assert_same_topology(rebuilt, g)

    def test_rebuilt_none_touched_full_rebuild(self):
        g = path_graph(4)
        csr = CSRGraph.from_graph(g)
        g.add_edge(0, 3)
        self._assert_same_topology(csr.rebuilt(g), g)

    def test_engine_refresh_unstales_engine(self):
        g = erdos_renyi_graph(15, 0.2, seed=4)
        engine = CSREngine(g)
        g.add_edge(0, 99)  # guaranteed-new vertex: always a real mutation
        with pytest.raises(ParameterError):
            resolve_engine(g, engine)
        engine.refresh({0, 99})
        assert resolve_engine(g, engine) is engine
        expected = h_bz(g, 2, backend="dict").core_index
        assert h_bz(g, 2, backend=engine).core_index == expected

    def test_engine_refresh_is_noop_when_current(self):
        g = path_graph(4)
        engine = CSREngine(g)
        snapshot = engine.csr
        engine.refresh()
        assert engine.csr is snapshot

    def test_dict_engine_refresh_is_noop(self):
        g = path_graph(4)
        engine = DictEngine(g)
        g.add_edge(0, 3)
        engine.refresh()
        assert resolve_engine(g, engine) is engine

    def test_prebuilt_snapshot_from_older_graph_state_rejected(self):
        # The version stamp is taken at construction, so it cannot vouch
        # for a snapshot built before a mutation; the snapshot's recorded
        # source version must catch that at the constructor boundary.
        g = path_graph(4)
        csr = CSRGraph.from_graph(g)
        g.add_edge(0, 99)
        with pytest.raises(ParameterError):
            CSREngine(g, csr)

    def test_prebuilt_snapshot_rejected_even_with_equal_sizes(self):
        # remove+add keeps |V| and |E| identical; only the source-version
        # stamp distinguishes the stale snapshot from a fresh one.
        g = Graph([(0, 1), (1, 2), (2, 3)])
        csr = CSRGraph.from_graph(g)
        g.remove_edge(0, 1)
        g.add_edge(0, 2)
        with pytest.raises(ParameterError):
            CSREngine(g, csr)
        assert CSRGraph.from_graph(g).source_version == g.version

"""Tests for the classic (h = 1) core decomposition, cross-checked with networkx."""

import networkx as nx
import pytest

from repro.core import classic_core_decomposition, classic_core_indices
from repro.graph import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)

from helpers import to_networkx


class TestClassicCore:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx_core_number(self, seed):
        g = erdos_renyi_graph(40, 0.12, seed=seed)
        expected = nx.core_number(to_networkx(g))
        assert classic_core_indices(g) == expected

    def test_complete_graph(self):
        result = classic_core_decomposition(complete_graph(6))
        assert all(c == 5 for c in result.core_index.values())
        assert result.degeneracy == 5

    def test_cycle_graph(self):
        result = classic_core_decomposition(cycle_graph(8))
        assert all(c == 2 for c in result.core_index.values())

    def test_star_graph(self):
        result = classic_core_decomposition(star_graph(5))
        assert all(c == 1 for c in result.core_index.values())

    def test_path_graph(self):
        result = classic_core_decomposition(path_graph(6))
        assert all(c == 1 for c in result.core_index.values())

    def test_isolated_vertex_gets_zero(self):
        g = path_graph(3)
        g.add_vertex(42)
        assert classic_core_decomposition(g).core_index[42] == 0

    def test_empty_graph(self):
        result = classic_core_decomposition(Graph())
        assert result.core_index == {}
        assert result.degeneracy == 0

    def test_alive_restriction(self):
        g = complete_graph(5)
        result = classic_core_decomposition(g, alive={0, 1, 2})
        assert set(result.core_index) == {0, 1, 2}
        assert all(c == 2 for c in result.core_index.values())

    def test_removal_order_is_smallest_last(self):
        g = erdos_renyi_graph(30, 0.15, seed=9)
        result = classic_core_decomposition(g)
        order = result.removal_order
        assert order is not None
        assert sorted(order, key=repr) == sorted(g.vertices(), key=repr)
        # Each vertex, at removal time, has at most core(v) neighbors among
        # the still-alive (later-removed) vertices.
        position = {v: i for i, v in enumerate(order)}
        for v in g.vertices():
            later_neighbors = sum(1 for u in g.neighbors(v) if position[u] > position[v])
            assert later_neighbors <= result.core_index[v]

    def test_algorithm_label(self):
        assert classic_core_decomposition(cycle_graph(4)).algorithm == "classic-BZ"

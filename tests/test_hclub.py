"""Tests for h-clubs, the exact solvers, and the Algorithm 7 core wrapper."""

import itertools

import pytest

from repro.applications.hclub import (
    DBCSolver,
    HClubResult,
    ITDBCSolver,
    drop_heuristic_h_club,
    is_h_club,
    maximum_h_club,
    maximum_h_club_with_core,
)
from repro.core import core_decomposition
from repro.errors import InvalidDistanceThresholdError, ParameterError
from repro.graph import Graph
from repro.graph.generators import (
    caveman_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)
from repro.traversal.distances import induced_diameter_at_most


def brute_force_max_h_club(graph, h):
    """Oracle: largest subset whose induced subgraph has diameter <= h."""
    vertices = sorted(graph.vertices(), key=repr)
    best = set()
    for size in range(len(vertices), 0, -1):
        if size <= len(best):
            break
        for subset in itertools.combinations(vertices, size):
            if induced_diameter_at_most(graph, set(subset), h):
                return set(subset)
    return best


class TestIsHClub:
    def test_star_is_2_club_but_leaves_alone_are_not(self):
        g = star_graph(4)
        assert is_h_club(g, set(g.vertices()), 2)
        # Without the hub the leaves are disconnected.
        assert not is_h_club(g, {1, 2, 3}, 2)

    def test_clubs_are_not_closed_under_inclusion(self):
        # The classic pathology: a subset of an h-club need not be an h-club.
        g = star_graph(3)
        assert is_h_club(g, {0, 1, 2, 3}, 2)
        assert not is_h_club(g, {1, 2, 3}, 2)

    def test_singleton_and_empty(self):
        g = path_graph(3)
        assert is_h_club(g, set(), 2)
        assert is_h_club(g, {0}, 2)

    def test_vertices_outside_graph(self):
        assert not is_h_club(path_graph(3), {0, 42}, 2)

    def test_invalid_h(self):
        with pytest.raises(InvalidDistanceThresholdError):
            is_h_club(path_graph(3), {0, 1}, 0)


class TestDropHeuristic:
    def test_returns_valid_club(self):
        g = erdos_renyi_graph(20, 0.15, seed=3)
        club = drop_heuristic_h_club(g, 2)
        assert is_h_club(g, club, 2)

    def test_whole_graph_returned_when_already_a_club(self):
        g = complete_graph(5)
        assert drop_heuristic_h_club(g, 2) == set(g.vertices())

    def test_candidate_restriction(self):
        g = cycle_graph(8)
        club = drop_heuristic_h_club(g, 2, candidate={0, 1, 2, 3})
        assert club <= {0, 1, 2, 3}
        assert is_h_club(g, club, 2)


class TestExactSolvers:
    @pytest.mark.parametrize("solver_class", [DBCSolver, ITDBCSolver])
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("h", [2, 3])
    def test_matches_brute_force(self, solver_class, seed, h):
        g = erdos_renyi_graph(11, 0.22, seed=seed)
        expected = len(brute_force_max_h_club(g, h))
        result = solver_class().solve(g, h)
        assert result.optimal
        assert result.size == expected
        assert is_h_club(g, result.vertices, h)

    @pytest.mark.parametrize("solver_class", [DBCSolver, ITDBCSolver])
    def test_structured_graphs(self, solver_class):
        cases = [
            (complete_graph(6), 2, 6),
            (star_graph(5), 2, 6),
            (cycle_graph(7), 2, 3),
            (path_graph(6), 3, 4),
        ]
        for graph, h, expected in cases:
            result = solver_class().solve(graph, h)
            assert result.size == expected

    def test_time_budget_reports_not_optimal(self):
        g = erdos_renyi_graph(60, 0.15, seed=1)
        result = DBCSolver(time_budget_seconds=0.0).solve(g, 2)
        assert not result.optimal
        # Whatever was found must still be a feasible club.
        assert is_h_club(g, result.vertices, 2)

    def test_candidate_and_initial_best(self):
        g = caveman_graph(3, 5)
        candidate = set(range(5))  # one clique
        result = DBCSolver().solve(g, 2, candidate=candidate,
                                   initial_best={0, 1})
        assert result.vertices <= candidate | {0, 1}
        assert result.size >= 5

    def test_maximum_h_club_dispatch(self):
        g = cycle_graph(6)
        assert maximum_h_club(g, 2, method="dbc").size == 3
        assert maximum_h_club(g, 2, method="itdbc").size == 3
        with pytest.raises(ParameterError):
            maximum_h_club(g, 2, method="gurobi")

    def test_result_dataclass(self):
        result = HClubResult(vertices={1, 2}, solver="DBC")
        assert result.size == 2


class TestAlgorithm7Wrapper:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("h", [2, 3])
    def test_wrapper_is_exact(self, seed, h):
        g = erdos_renyi_graph(12, 0.2, seed=seed)
        expected = len(brute_force_max_h_club(g, h))
        result = maximum_h_club_with_core(g, h)
        assert result.optimal
        assert result.size == expected
        assert is_h_club(g, result.vertices, h)

    @pytest.mark.parametrize("solver_class", [DBCSolver, ITDBCSolver])
    def test_wrapper_with_either_solver(self, solver_class, small_community_graph):
        standalone = solver_class().solve(small_community_graph, 2)
        wrapped = maximum_h_club_with_core(small_community_graph, 2,
                                           solver=solver_class())
        assert wrapped.size == standalone.size
        assert wrapped.solver.startswith("Alg7+")

    def test_wrapper_reuses_decomposition(self, small_community_graph):
        decomposition = core_decomposition(small_community_graph, 2)
        result = maximum_h_club_with_core(small_community_graph, 2,
                                          decomposition=decomposition)
        assert result.optimal

    def test_theorem3_core_containment(self, small_community_graph):
        h = 2
        result = maximum_h_club_with_core(small_community_graph, h)
        decomposition = core_decomposition(small_community_graph, h)
        k = result.size - 1
        assert result.vertices <= decomposition.core(k)

    def test_wrapper_on_disconnected_graph(self, disconnected_graph):
        result = maximum_h_club_with_core(disconnected_graph, 2)
        assert result.size == 3  # one of the triangles / paths

    def test_wrapper_timeout_propagates(self):
        g = erdos_renyi_graph(60, 0.15, seed=2)
        result = maximum_h_club_with_core(g, 2, solver=DBCSolver(time_budget_seconds=0.0))
        assert not result.optimal

"""Tests for the execution runtime: context lifecycle, ownership, shims.

Covers the three contracts the runtime layer owns:

* **Engine ownership** — a context closes engines it resolved from a name,
  and *never* closes a caller-supplied engine or a caller-supplied context
  (the regression the old copy-pasted ``owned = isinstance(backend, str)``
  pattern existed to enforce, now implemented exactly once).
* **Worker-count deprecation** — every entry point accepts ``num_workers``
  and funnels the legacy ``num_threads`` (and CLI ``--threads``) through
  the single shim in :mod:`repro.runtime.workers`, with one
  :class:`DeprecationWarning` and the documented precedence.
* **Context plumbing** — the context's backend/executor/worker/peel choices
  reach the algorithms, and the context validates its inputs.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import (
    CSREngine,
    DictEngine,
    compute_h_degrees,
    core_decomposition,
    core_decomposition_with_report,
    h_bz,
    h_lb,
    h_lb_ub,
    improve_lb,
    upper_bound,
)
from repro.cli import main
from repro.dynamic import DynamicKHCore
from repro.errors import ParameterError
from repro.graph.generators import cycle_graph, relaxed_caveman_graph
from repro.instrumentation import Counters
from repro.runtime import (
    ExecutionContext,
    resolve_worker_count,
    scoped_context,
)


class RecordingCSREngine(CSREngine):
    """CSR engine that counts ``close()`` calls (ownership regression)."""

    __slots__ = ("close_calls",)

    def __init__(self, graph):
        super().__init__(graph)
        self.close_calls = 0

    def close(self):
        self.close_calls += 1
        super().close()


@pytest.fixture
def graph():
    return relaxed_caveman_graph(5, 5, 0.2, seed=0)


class TestExecutionContext:
    def test_resolves_backend_name(self, graph):
        with ExecutionContext(graph, backend="csr") as ctx:
            assert isinstance(ctx.engine, CSREngine)
            assert ctx.backend_name == "csr"
            assert ctx.owns_engine
        assert ctx.closed

    def test_auto_backend_picks_csr_for_integer_graph(self, graph):
        with ExecutionContext(graph, backend="auto", csr_threshold=0) as ctx:
            assert ctx.backend_name == "csr"

    def test_close_is_idempotent(self, graph):
        ctx = ExecutionContext(graph, backend="dict")
        ctx.close()
        ctx.close()
        assert ctx.closed

    def test_validates_executor_and_peel(self, graph):
        with pytest.raises(ParameterError):
            ExecutionContext(graph, executor="gpu")
        with pytest.raises(ParameterError):
            ExecutionContext(graph, peel="linkedlist")

    def test_array_peel_requires_csr_engine(self, graph):
        with ExecutionContext(graph, backend="dict", peel="array") as ctx:
            with pytest.raises(ParameterError):
                ctx.make_peel_state()

    def test_bulk_h_degrees_matches_reference(self, graph):
        expected = compute_h_degrees(graph, 2)
        with ExecutionContext(graph, backend="csr") as ctx:
            got = ctx.engine.to_labels(ctx.bulk_h_degrees(2))
        assert got == expected

    def test_repr_mentions_state(self, graph):
        ctx = ExecutionContext(graph, backend="dict", executor="serial")
        assert "serial" in repr(ctx) and "open" in repr(ctx)
        ctx.close()
        assert "closed" in repr(ctx)


class TestEngineOwnership:
    """A caller-supplied engine (or context) is never closed by callees."""

    def test_context_closes_owned_engine(self, graph, monkeypatch):
        calls = []
        original = CSREngine.close
        monkeypatch.setattr(CSREngine, "close",
                            lambda self: (calls.append(self),
                                          original(self)) and None)
        with ExecutionContext(graph, backend="csr"):
            pass
        assert len(calls) == 1

    def test_context_never_closes_supplied_engine(self, graph):
        engine = RecordingCSREngine(graph)
        with ExecutionContext(graph, backend=engine) as ctx:
            assert ctx.engine is engine
            assert not ctx.owns_engine
        assert engine.close_calls == 0

    @pytest.mark.parametrize("algorithm", [h_bz, h_lb, h_lb_ub])
    def test_algorithms_never_close_supplied_engine(self, graph, algorithm):
        engine = RecordingCSREngine(graph)
        algorithm(graph, 2, backend=engine)
        assert engine.close_calls == 0

    def test_facade_never_closes_supplied_engine(self, graph):
        engine = RecordingCSREngine(graph)
        core_decomposition(graph, 2, algorithm="h-LB+UB", backend=engine)
        assert engine.close_calls == 0

    def test_algorithms_never_close_supplied_context(self, graph):
        engine = RecordingCSREngine(graph)
        with ExecutionContext(graph, backend=engine) as ctx:
            h_lb_ub(graph, 2, context=ctx)
            h_bz(graph, 2, context=ctx)
            core_decomposition(graph, 2, context=ctx)
            assert not ctx.closed
        assert engine.close_calls == 0

    def test_facade_closes_engines_it_resolves(self, graph, monkeypatch):
        calls = []
        original = CSREngine.close
        monkeypatch.setattr(CSREngine, "close",
                            lambda self: (calls.append(self),
                                          original(self)) and None)
        core_decomposition(graph, 2, algorithm="h-LB+UB", backend="csr")
        assert len(calls) >= 1

    def test_scoped_context_passthrough_and_validation(self, graph):
        other = cycle_graph(4)
        with ExecutionContext(graph, backend="dict") as ctx:
            with scoped_context(graph, ctx) as inner:
                assert inner is ctx
            with pytest.raises(ParameterError):
                with scoped_context(other, ctx):
                    pass
        with pytest.raises(ParameterError):
            with scoped_context(graph, ctx):  # closed context
                pass

    def test_context_mismatched_graph_rejected_by_algorithms(self, graph):
        with ExecutionContext(graph, backend="dict") as ctx:
            with pytest.raises(ParameterError):
                h_lb(cycle_graph(5), 2, context=ctx)


class TestContextResults:
    """The context API produces the same decompositions as the kwargs API."""

    @pytest.mark.parametrize("peel", ["auto", "dict", "array"])
    def test_peel_layouts_agree_end_to_end(self, graph, peel):
        reference = core_decomposition(graph, 2, algorithm="h-LB",
                                       backend="dict").core_index
        with ExecutionContext(graph, backend="csr", peel=peel) as ctx:
            assert h_lb(graph, 2, context=ctx).core_index == reference

    def test_context_counters_are_used(self, graph):
        counters = Counters()
        with ExecutionContext(graph, backend="csr",
                              counters=counters) as ctx:
            h_lb(graph, 2, context=ctx)
        assert counters.bfs_calls > 0

    def test_report_records_context_configuration(self, graph):
        with ExecutionContext(graph, backend="csr", executor="serial",
                              num_workers=2) as ctx:
            report = core_decomposition_with_report(graph, 2,
                                                    algorithm="h-LB+UB",
                                                    context=ctx)
        assert report.params["backend"] == "csr"
        assert report.params["executor"] == "serial"
        assert report.params["num_workers"] == 2


class TestWorkerShim:
    def test_resolution_precedence(self):
        assert resolve_worker_count(None, None) == 1
        assert resolve_worker_count(3, None) == 3
        with pytest.warns(DeprecationWarning):
            assert resolve_worker_count(None, 2) == 2
        with pytest.warns(DeprecationWarning):
            # num_workers wins when both are given.
            assert resolve_worker_count(4, 2) == 4

    def test_no_warning_without_legacy_keyword(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_worker_count(2, None) == 2

    @pytest.mark.parametrize("call", [
        lambda g: h_bz(g, 2, num_threads=2),
        lambda g: h_lb(g, 2, num_threads=2),
        lambda g: h_lb_ub(g, 2, num_threads=2),
        lambda g: core_decomposition(g, 2, algorithm="h-BZ", num_threads=2),
        lambda g: compute_h_degrees(g, 2, num_threads=2),
        lambda g: upper_bound(g, 2, num_threads=2),
        lambda g: improve_lb(g, 2, set(g.vertices()), 1, num_threads=2),
        lambda g: DictEngine(g).bulk_h_degrees(2, num_threads=2),
        lambda g: CSREngine(g).bulk_h_degrees(2, num_threads=2),
        lambda g: DynamicKHCore(g.copy(), h=2, num_threads=2),
        lambda g: ExecutionContext(g, num_threads=2).close(),
    ], ids=["h_bz", "h_lb", "h_lb_ub", "facade", "compute_h_degrees",
            "upper_bound", "improve_lb", "dict_engine", "csr_engine",
            "dynamic", "context"])
    def test_every_entry_point_deprecates_num_threads(self, graph, call):
        with pytest.warns(DeprecationWarning, match="num_threads"):
            call(graph)

    def test_num_workers_spelling_is_silent(self, graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            h_lb_ub(graph, 2, num_workers=2)
            core_decomposition(graph, 2, num_workers=2)
            compute_h_degrees(graph, 2, num_workers=2)

    def test_cli_threads_flag_warns_and_works(self, tmp_path, capsys):
        edges = tmp_path / "g.edges"
        edges.write_text("0 1\n1 2\n2 0\n")
        with pytest.warns(DeprecationWarning, match="--threads"):
            exit_code = main([str(edges), "--h", "2", "--verbose",
                              "--threads", "2"])
        assert exit_code == 0
        assert "workers: 2" in capsys.readouterr().err

    def test_cli_workers_flag_is_silent(self, tmp_path, capsys):
        edges = tmp_path / "g.edges"
        edges.write_text("0 1\n1 2\n2 0\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            exit_code = main([str(edges), "--h", "2", "--workers", "2"])
        assert exit_code == 0

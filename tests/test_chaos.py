"""Chaos battery: armed fault plans against whole library operations.

Every test arms a deterministic :class:`~repro.resilience.faults.FaultPlan`
at a named injection site and asserts two things: the operation still
*completes*, and its observable output is bit-identical to the fault-free
reference — recovery must never change results, only cost.  Fault-plan
mechanics are unit-tested in ``test_resilience.py``; the janitors that
clean up what these faults leave behind are exercised here end-to-end.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.core import core_decomposition
from repro.core.backends import numpy_available
from repro.errors import CoreIndexError, FaultInjectedError, GraphFormatError
from repro.graph import generators as gen
from repro.instrumentation import Counters
from repro.resilience import armed
from repro.resilience.janitor import run_doctor
from repro.runtime import ExecutionContext


@pytest.fixture(autouse=True)
def _interpreted_native(monkeypatch):
    """Run the native cells without a compiler (results identical)."""
    monkeypatch.setenv("KH_CORE_NATIVE_ALLOW_INTERPRETED", "1")


def _chaos_graph():
    # Uneven degrees so the LPT chunk plan produces distinct chunks and a
    # killed worker genuinely takes unfinished chunks with it.
    graph = gen.relaxed_caveman_graph(4, 8, 0.25, seed=13)
    for i in range(0, 24, 3):
        graph.add_edge(i, (i * 7 + 11) % graph.num_vertices)
    return graph


def _engines_under_test():
    engines = ["csr"]
    if numpy_available():
        engines += ["numpy", "native"]
    return engines


def _strip_resilience(counts):
    """Counter totals minus the recovery-event keys (which tally cost)."""
    return {k: v for k, v in counts.items()
            if not k.startswith("resilience.")}


def _reference(graph, h, engine_name):
    counters = Counters()
    with ExecutionContext(graph, backend=engine_name, executor="serial",
                          counters=counters) as context:
        result = core_decomposition(graph, h, algorithm="h-BZ",
                                    context=context)
    return result, counters.as_dict()


def _supervised(graph, h, engine_name):
    counters = Counters()
    with ExecutionContext(graph, backend=engine_name, executor="process",
                          num_workers=2, counters=counters) as context:
        result = core_decomposition(graph, h, algorithm="h-BZ",
                                    context=context)
        report = context.resilience
    return result, counters.as_dict(), report


# --------------------------------------------------------------------- #
# worker.kill — the acceptance-criteria scenario
# --------------------------------------------------------------------- #
class TestWorkerKill:
    @pytest.mark.parametrize("h", [1, 2, 3])
    @pytest.mark.parametrize("engine_name", ["csr", "numpy", "native"])
    def test_one_kill_per_dispatch_is_bit_identical_to_serial(
            self, engine_name, h):
        """Kill one pool worker at every dispatch generation; nothing in
        the output may change — cores, removal order, or counter totals."""
        if engine_name in ("numpy", "native") and not numpy_available():
            pytest.skip("NumPy not installed")
        graph = _chaos_graph()
        expected, expected_counts = _reference(graph, h, engine_name)
        with armed("worker.kill=once;seed=1"):
            got, got_counts, report = _supervised(graph, h, engine_name)
        assert got.core_index == expected.core_index
        assert got.removal_order == expected.removal_order
        assert _strip_resilience(got_counts) == expected_counts
        assert report.pool_rebuilds >= 1
        assert got_counts["resilience.pool_rebuilds"] == report.pool_rebuilds

    def test_unbounded_kills_degrade_to_thread_and_still_complete(self):
        """``worker.kill=*`` re-kills past every rebuild budget: the ladder
        must fall through to the thread executor, not raise."""
        graph = _chaos_graph()
        expected, _ = _reference(graph, 2, "csr")
        with armed("worker.kill=*;seed=1"):
            got, got_counts, report = _supervised(graph, 2, "csr")
        assert got.core_index == expected.core_index
        assert got.removal_order == expected.removal_order
        assert any(d == "process->thread" for d in report.downgrades)
        assert got_counts["resilience.downgrades"] >= 1


# --------------------------------------------------------------------- #
# worker.stall — deadlines abandon stragglers
# --------------------------------------------------------------------- #
class TestWorkerStall:
    def test_stalled_worker_hits_deadline_then_completes(self, monkeypatch):
        monkeypatch.setenv("KH_CORE_CHUNK_DEADLINE", "0.25")
        graph = _chaos_graph()
        expected, _ = _reference(graph, 2, "csr")
        # One stalled chunk in the first dispatch, well past the round
        # deadline; later dispatches are clean.
        with armed("worker.stall=1;stall=5.0;seed=1"):
            got, got_counts, report = _supervised(graph, 2, "csr")
        assert got.core_index == expected.core_index
        assert report.deadline_hits >= 1
        assert report.pool_rebuilds >= 1
        assert got_counts["resilience.deadline_hits"] == report.deadline_hits


# --------------------------------------------------------------------- #
# shm.attach_fail — worker-side exception, chunk-level retry
# --------------------------------------------------------------------- #
class TestAttachFail:
    def test_failed_attach_is_retried_not_fatal(self):
        graph = _chaos_graph()
        expected, _ = _reference(graph, 2, "csr")
        with armed("shm.attach_fail=1;seed=1"):
            got, got_counts, report = _supervised(graph, 2, "csr")
        assert got.core_index == expected.core_index
        assert got.removal_order == expected.removal_order
        assert report.retries >= 1
        assert got_counts["resilience.retries"] == report.retries


# --------------------------------------------------------------------- #
# sqlite.busy — reader retry loop
# --------------------------------------------------------------------- #
class TestSqliteBusy:
    @pytest.fixture
    def index_path(self, tmp_path):
        from repro.index import build_index

        graph = gen.relaxed_caveman_graph(3, 6, 0.2, seed=4)
        path = str(tmp_path / "chaos.khidx")
        build_index(graph, path, h_values=(1, 2), source="chaos")
        return path

    def test_transient_busy_is_retried(self, index_path):
        from repro.index import CoreIndexReader

        with CoreIndexReader(index_path) as reader:
            clean = reader.core_number(0, 2)
            with armed("sqlite.busy=1-3;seed=2") as plan:
                assert reader.core_number(0, 2) == clean
                assert plan.fired("sqlite.busy") == 3

    def test_persistent_busy_raises_core_index_error(self, index_path):
        from repro.index import CoreIndexReader

        with CoreIndexReader(index_path) as reader:
            with armed("sqlite.busy=*;seed=2"):
                with pytest.raises(CoreIndexError, match="stayed locked"):
                    reader.core_number(0, 2)
            # Disarmed again: the reader connection is still healthy.
            assert isinstance(reader.core_number(0, 2), int)


# --------------------------------------------------------------------- #
# block.torn_write — durability window crash, then the janitor
# --------------------------------------------------------------------- #
class TestTornWrite:
    def test_graceful_path_aborts_cleanly(self, tmp_path):
        """An in-process failure runs the writer's abort: no debris."""
        from repro.graph.stream_load import stream_load

        edges = tmp_path / "torn.edges"
        edges.write_text("0 1\n1 2\n2 0\n2 3\n")
        out = str(tmp_path / "torn.khcsr")
        with armed("block.torn_write=1;seed=3"):
            with pytest.raises(FaultInjectedError):
                csr = stream_load(str(edges), out_path=out)
                csr.close()
        assert not os.path.exists(out)
        # Disarmed rerun of the identical load succeeds.
        csr = stream_load(str(edges), out_path=out)
        try:
            assert csr.num_vertices == 4
        finally:
            csr.close()

    def test_hard_crash_leaves_rejectable_block_doctor_reclaims(
            self, tmp_path):
        """A crash in the durability window (no abort) leaves a building
        block: readers must reject it and the doctor must reclaim it."""
        from array import array

        from repro.graph.storage import BlockFileWriter, load_csr

        out = str(tmp_path / "torn.khcsr")
        writer = BlockFileWriter(out, num_vertices=3, adjacency_len=4)
        writer.write_indptr(array("q", [0, 2, 3, 4]))
        writer.write_adjacency(array("q", [1, 2, 0, 0]))
        with armed("block.torn_write=1;seed=3"):
            with pytest.raises(FaultInjectedError):
                writer.finalize()
        assert os.path.exists(out)
        with pytest.raises(GraphFormatError):
            load_csr(out)
        stamp = os.stat(out).st_mtime - 3600
        os.utime(out, (stamp, stamp))
        report = run_doctor([str(tmp_path)], shm_dir=None, min_age=60.0)
        assert report.reclaimed_blocks == [out]
        assert not os.path.exists(out)


# --------------------------------------------------------------------- #
# serve.slow_client — request deadlines shed slow handlers
# --------------------------------------------------------------------- #
class TestServeSlowClient:
    def test_slow_handler_gets_503_with_retry_after(self):
        from repro.serve import CoreServer, CoreService

        service = CoreService(gen.relaxed_caveman_graph(3, 6, 0.2, seed=5),
                              h=2)

        async def _raw_request(port, path):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write((f"GET {path} HTTP/1.1\r\n"
                              f"Host: x\r\nConnection: close\r\n\r\n"
                              ).encode("latin-1"))
                await writer.drain()
                raw = await reader.read(65536)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
            head, _, body = raw.partition(b"\r\n\r\n")
            lines = head.decode("latin-1").split("\r\n")
            status = int(lines[0].split()[1])
            headers = {}
            for line in lines[1:]:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
            return status, headers

        async def _main():
            server = await CoreServer(service, port=0,
                                      request_deadline=0.2).start()
            try:
                with armed("serve.slow_client=1;stall=5.0;seed=6"):
                    status, headers = await _raw_request(
                        server.port, "/core_number?v=0")
                    assert status == 503
                    assert headers.get("retry-after") == "1"
                    # Probe 2 does not fire: the service recovered.
                    status, _headers = await _raw_request(
                        server.port, "/core_number?v=0")
                    assert status == 200
            finally:
                await server.aclose()

        try:
            asyncio.run(_main())
        finally:
            service.close()

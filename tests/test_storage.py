"""Unit tests for the CSR storage tier (repro.graph.storage).

Covers the block-file format (round trips, status sentinel, labels
sidecar), the storage resolution policy, mmap-backed ``CSRGraph``
snapshots and their lifecycle, ``FrozenGraphView``, and the file-backed
shared-memory export used by the process executor.
"""

import os

import pytest

from repro.core import core_decomposition, core_decomposition_with_report
from repro.core.backends import CSREngine, resolve_engine
from repro.errors import GraphFormatError, ParameterError
from repro.graph import Graph, FrozenGraphView, load_csr
from repro.graph.csr import CSRGraph
from repro.graph.generators import relaxed_caveman_graph
from repro.graph.storage import (
    BLOCK_SUFFIX,
    DEFAULT_MMAP_AUTO_THRESHOLD,
    HEADER_SIZE,
    STATUS_OFFSET,
    BlockFileWriter,
    LazyLabelIndex,
    LazyLabelStore,
    MmapCSRStorage,
    estimated_payload_bytes,
    payload_layout,
    resolve_storage,
    sidecar_safe_label,
    write_block_file,
)
from repro.parallel import FileCSRExport, SharedCSRView
from repro.runtime import ExecutionContext


# A concrete small CSR: triangle 0-1-2 with 3 attached to 0.
INDPTR = [0, 3, 5, 7, 8]
ADJ = [1, 2, 3, 0, 2, 0, 1, 0]


@pytest.fixture
def graph():
    return relaxed_caveman_graph(4, 5, 0.2, seed=7)


class TestBlockFileFormat:
    def test_identity_round_trip(self, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        write_block_file(path, INDPTR, ADJ)
        csr = load_csr(path)
        try:
            assert list(csr.indptr) == INDPTR
            assert list(csr.adjacency) == ADJ
            assert list(csr.labels) == [0, 1, 2, 3]
            assert csr.storage_kind == "mmap"
            assert csr.index(2) == 2
        finally:
            csr.close()
        assert os.path.exists(path)  # not delete_on_close

    def test_sidecar_round_trip(self, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        labels = [10, "alpha", 7, "z-9"]
        write_block_file(path, INDPTR, ADJ, labels=labels)
        csr = load_csr(path)
        try:
            assert list(csr.labels) == labels
            assert csr.index("alpha") == 1
        finally:
            csr.close()

    def test_unfinalized_file_is_refused(self, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        writer = BlockFileWriter(path, 3, 0)
        writer._close_handles()  # simulate a crash: no finalize, no abort
        with pytest.raises(GraphFormatError, match="incomplete"):
            load_csr(path)

    def test_status_byte_gates_reads(self, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        write_block_file(path, INDPTR, ADJ)
        with open(path, "r+b") as handle:
            handle.seek(STATUS_OFFSET)
            handle.write(b"\x00")  # flip back to "building"
        with pytest.raises(GraphFormatError, match="incomplete"):
            load_csr(path)

    def test_bad_magic_is_refused(self, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        with open(path, "wb") as handle:
            handle.write(b"\x00" * 256)
        with pytest.raises(GraphFormatError, match="magic"):
            MmapCSRStorage(path)

    def test_truncated_payload_is_refused(self, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        write_block_file(path, INDPTR, ADJ)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 8)
        with pytest.raises(GraphFormatError, match="shorter"):
            MmapCSRStorage(path)

    def test_truncated_header_is_refused(self, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        with open(path, "wb") as handle:
            handle.write(b"KHCSR")
        with pytest.raises(GraphFormatError, match="truncated"):
            MmapCSRStorage(path)

    def test_abort_removes_partial_file(self, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        writer = BlockFileWriter(path, 3, 0)
        writer.abort()
        assert not os.path.exists(path)

    def test_finalize_rejects_count_mismatch(self, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        writer = BlockFileWriter(path, 3, 4)
        try:
            with pytest.raises(GraphFormatError, match="block writer"):
                writer.finalize()
        finally:
            writer.abort()

    def test_volatile_labels_not_loadable(self, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        write_block_file(path, INDPTR, ADJ, volatile_labels=True)
        with pytest.raises(GraphFormatError, match="no labels"):
            load_csr(path)

    def test_missing_sidecar_is_reported(self, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        write_block_file(path, INDPTR, ADJ, labels=["a", "b", "c", "d"])
        os.unlink(path + ".labels")
        with pytest.raises(GraphFormatError, match="sidecar"):
            load_csr(path)

    def test_payload_layout_consistency(self):
        indptr_bytes, adj_bytes, alive_offset, total = payload_layout(5, 8)
        assert indptr_bytes == 6 * 8
        assert adj_bytes == 8 * 8
        assert alive_offset == indptr_bytes + adj_bytes
        assert total == alive_offset + 5
        assert estimated_payload_bytes(5, 4) == total

    def test_file_size_matches_layout(self, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        write_block_file(path, INDPTR, ADJ)
        expected = HEADER_SIZE + payload_layout(len(INDPTR) - 1, len(ADJ))[3]
        assert os.path.getsize(path) == expected


class TestResolveStorage:
    def test_explicit_choices_pass_through(self):
        assert resolve_storage("ram", 10 ** 12) == "ram"
        assert resolve_storage("mmap", 0) == "mmap"

    def test_auto_threshold(self):
        assert resolve_storage("auto", 1024) == "ram"
        assert resolve_storage("auto", DEFAULT_MMAP_AUTO_THRESHOLD) == "mmap"

    def test_auto_env_force(self, monkeypatch):
        monkeypatch.setenv("KH_CORE_STORAGE", "mmap")
        assert resolve_storage("auto", 0) == "mmap"
        monkeypatch.setenv("KH_CORE_STORAGE", "ram")
        assert resolve_storage("auto", 10 ** 12) == "ram"

    def test_env_threshold_override(self, monkeypatch):
        monkeypatch.setenv("KH_CORE_MMAP_THRESHOLD", "100")
        assert resolve_storage("auto", 101) == "mmap"
        assert resolve_storage("auto", 99) == "ram"

    def test_unknown_storage_rejected(self):
        with pytest.raises(ParameterError):
            resolve_storage("disk", 0)

    def test_sidecar_safe_label(self):
        assert sidecar_safe_label(17)
        assert sidecar_safe_label("vertex-a")
        assert not sidecar_safe_label("two words")
        assert not sidecar_safe_label((1, 2))
        assert not sidecar_safe_label("")


class TestMmapSnapshots:
    def test_from_graph_mmap_matches_ram(self, graph):
        ram = CSRGraph.from_graph(graph, storage="ram")
        mm = CSRGraph.from_graph(graph, storage="mmap")
        try:
            assert list(mm.indptr) == list(ram.indptr)
            assert list(mm.adjacency) == list(ram.adjacency)
            assert list(mm.labels) == list(ram.labels)
            assert mm.storage_kind == "mmap"
        finally:
            mm.close()

    def test_temp_block_is_unlinked_on_close(self, graph, tmp_path):
        mm = CSRGraph.from_graph(graph, storage="mmap",
                                 storage_dir=str(tmp_path))
        spills = [f for f in os.listdir(tmp_path) if f.endswith(BLOCK_SUFFIX)]
        assert len(spills) == 1
        mm.close()
        assert not any(f.endswith(BLOCK_SUFFIX) for f in os.listdir(tmp_path))

    def test_persisted_block_reopens(self, graph, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        mm = CSRGraph.from_graph(graph, storage="mmap", storage_path=path)
        expected = (list(mm.indptr), list(mm.adjacency), list(mm.labels))
        mm.close()
        assert os.path.exists(path)  # explicit paths persist
        reopened = load_csr(path)
        try:
            assert (list(reopened.indptr), list(reopened.adjacency),
                    list(reopened.labels)) == expected
        finally:
            reopened.close()

    def test_persisting_unsafe_labels_raises(self, tmp_path):
        graph = Graph([((1, 2), (3, 4))])  # tuple labels: no sidecar form
        with pytest.raises(ParameterError, match="round-trip"):
            CSRGraph.from_graph(graph, storage="mmap",
                                storage_path=str(tmp_path / "g.khcsr"))

    def test_to_ram_is_bit_identical(self, graph):
        mm = CSRGraph.from_graph(graph, storage="mmap")
        try:
            ram = mm.to_ram()
            assert list(ram.indptr) == list(mm.indptr)
            assert list(ram.adjacency) == list(mm.adjacency)
            assert ram.labels == list(mm.labels)
            assert ram.storage_kind == "ram"
        finally:
            mm.close()

    def test_decomposition_parity_over_storage(self, graph):
        reference = core_decomposition(graph, h=2)
        mm = CSRGraph.from_graph(graph, storage="mmap")
        try:
            view = FrozenGraphView(mm)
            result = core_decomposition(view, h=2)
            assert result.core_index == reference.core_index
        finally:
            mm.close()


class TestFrozenGraphView:
    @pytest.fixture
    def view(self, graph):
        return FrozenGraphView(CSRGraph.from_graph(graph)), graph

    def test_read_surface_matches_source(self, view):
        frozen, graph = view
        assert frozen.num_vertices == graph.num_vertices
        assert frozen.num_edges == graph.num_edges
        assert len(frozen) == len(graph)
        assert set(frozen.vertices()) == set(graph.vertices())
        for v in graph.vertices():
            assert v in frozen
            assert frozen.degree(v) == graph.degree(v)
            assert set(frozen.neighbors(v)) == set(graph.neighbors(v))
        assert ({frozenset(e) for e in frozen.edges()}
                == {frozenset(e) for e in graph.edges()})
        assert "storage=" in repr(frozen)

    def test_contains_handles_foreign_types(self, view):
        frozen, _ = view
        assert "nope" not in frozen
        assert [1, 2] not in frozen  # unhashable: False, not TypeError

    def test_has_edge_missing_vertices(self, view):
        frozen, _ = view
        assert not frozen.has_edge("ghost", 0)

    def test_subgraph_materializes(self, view):
        frozen, graph = view
        keep = list(graph.vertices())[:6]
        assert frozen.subgraph(keep) == graph.subgraph(keep)

    def test_degree_histogram(self, view):
        from repro.graph.stats import degree_histogram

        frozen, graph = view
        assert frozen.degree_histogram() == degree_histogram(graph)

    def test_resolve_engine_rejects_relabel(self, view):
        frozen, _ = view
        with pytest.raises(ParameterError, match="relabel"):
            resolve_engine(frozen, backend="csr", relabel="degree")

    def test_execution_context_accepts_view(self, view):
        frozen, graph = view
        reference = core_decomposition(graph, h=2)
        with ExecutionContext(frozen, backend="csr") as context:
            report = core_decomposition_with_report(frozen, 2,
                                                    context=context)
        assert report.result.core_index == reference.core_index


class TestEngineStorageLifecycle:
    def test_context_storage_mmap_parity(self, graph):
        reference = core_decomposition(graph, h=2)
        with ExecutionContext(graph, backend="csr",
                              storage="mmap") as context:
            report = core_decomposition_with_report(graph, 2,
                                                    context=context)
            assert context.engine.csr.storage_kind == "mmap"
        assert report.result.core_index == reference.core_index

    def test_engine_close_releases_owned_storage(self, graph):
        engine = CSREngine(graph, storage="mmap")
        storage = engine.csr.storage
        assert engine.csr.storage_kind == "mmap"
        engine.close()
        assert not storage._finalizer.alive

    def test_refresh_keeps_storage_policy(self, graph):
        engine = CSREngine(graph, storage="mmap")
        try:
            old_storage = engine.csr.storage
            graph.add_edge("fresh-a", "fresh-b")
            engine.refresh()
            assert engine.csr.storage_kind == "mmap"
            assert not old_storage._finalizer.alive  # old spill released
            assert "fresh-a" in engine.csr.index_of
        finally:
            engine.close()

    def test_supplied_snapshot_not_closed(self, graph):
        mm = CSRGraph.from_graph(graph, storage="mmap")
        try:
            engine = CSREngine(graph, csr=mm)
            engine.close()
            assert mm.storage._finalizer.alive  # caller still owns it
        finally:
            mm.close()


class TestFileCSRExport:
    def test_requires_mmap_storage(self, graph):
        ram = CSRGraph.from_graph(graph, storage="ram")
        with pytest.raises(ValueError):
            FileCSRExport(ram, 0)

    def test_view_attaches_by_path(self, graph):
        mm = CSRGraph.from_graph(graph, storage="mmap")
        export = FileCSRExport(mm, generation=3)
        try:
            layout = export.layout()
            assert layout[0] == "file"
            assert layout[2] == mm.num_vertices
            assert layout[4] == 3
            view = SharedCSRView(layout)
            try:
                assert list(view.indptr) == list(mm.indptr)
                assert list(view.adjacency) == list(mm.adjacency)
                assert all(view.alive_region[i] for i in range(mm.num_vertices))
            finally:
                view.close()
        finally:
            export.close()
            mm.close()

    def test_write_alive_propagates(self, graph):
        mm = CSRGraph.from_graph(graph, storage="mmap")
        export = FileCSRExport(mm, generation=0)
        try:
            alive = bytearray(b"\x01" * mm.num_vertices)
            alive[0] = 0
            export.write_alive(bytes(alive))
            view = SharedCSRView(export.layout())
            try:
                assert view.alive_region[0] == 0
                assert view.alive_region[1] == 1
            finally:
                view.close()
        finally:
            export.close()
            mm.close()

    def test_close_keeps_dataset_file(self, graph, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        mm = CSRGraph.from_graph(graph, storage="mmap", storage_path=path)
        export = FileCSRExport(mm, generation=0)
        export.close()
        assert os.path.exists(path)  # only the alive segment is unlinked
        mm.close()

    def test_process_executor_over_mmap_storage(self, graph):
        reference = core_decomposition(graph, h=2)
        with ExecutionContext(graph, backend="csr", storage="mmap",
                              executor="process",
                              num_workers=2) as context:
            report = core_decomposition_with_report(graph, 2,
                                                    context=context)
        assert report.result.core_index == reference.core_index


class TestLazyLabelReopen:
    """Sidecar-label reopen is O(1): nothing is read until a label is asked."""

    LABELS = ["alpha", 17, "z-9", "beta"]

    def _block(self, tmp_path):
        path = str(tmp_path / ("g" + BLOCK_SUFFIX))
        write_block_file(path, INDPTR, ADJ, labels=self.LABELS)
        return path

    def test_reopen_defers_the_sidecar_read(self, tmp_path):
        csr = load_csr(self._block(tmp_path))
        try:
            store = csr.labels
            assert isinstance(store, LazyLabelStore)
            assert store._offsets is None  # untouched: nothing mapped yet
            assert isinstance(csr.index_of, LazyLabelIndex)
            assert csr.index_of._index is None
            # len() comes from the block header, not the sidecar.
            assert len(store) == 4
            assert store._offsets is None
        finally:
            csr.close()

    def test_random_access_and_iteration(self, tmp_path):
        csr = load_csr(self._block(tmp_path))
        try:
            assert csr.labels[2] == "z-9"
            assert csr.labels[-1] == "beta"
            assert list(csr.labels) == self.LABELS
            with pytest.raises(IndexError):
                csr.labels[4]
        finally:
            csr.close()

    def test_reverse_index_built_on_first_lookup(self, tmp_path):
        csr = load_csr(self._block(tmp_path))
        try:
            index = csr.index_of
            assert index["z-9"] == 2
            assert index.get(17) == 1
            assert index.get("missing") is None
            assert "alpha" in index and "missing" not in index
            assert len(index) == 4
            assert dict(index) == {v: i for i, v in enumerate(self.LABELS)}
            assert csr.index("beta") == 3
        finally:
            csr.close()

    def test_decomposition_over_lazy_labels(self, tmp_path):
        graph = Graph()
        for u, v in [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]:
            graph.add_edge(u, v)
        reference = core_decomposition(graph, h=2).core_index
        path = str(tmp_path / ("labeled" + BLOCK_SUFFIX))
        snapshot = CSRGraph.from_graph(graph)
        write_block_file(path, list(snapshot.indptr),
                         list(snapshot.adjacency),
                         labels=list(snapshot.labels))
        reopened = load_csr(path)
        try:
            view = FrozenGraphView(reopened)
            assert core_decomposition(view, h=2).core_index == reference
        finally:
            reopened.close()

    def test_truncated_sidecar_raises_at_first_access(self, tmp_path):
        path = self._block(tmp_path)
        with open(path + ".labels", "w", encoding="utf-8") as fh:
            fh.write("only\ntwo\n")
        csr = load_csr(path)  # reopen itself stays O(1) and succeeds
        try:
            with pytest.raises(GraphFormatError, match="2 labels for 4"):
                csr.labels[0]
        finally:
            csr.close()

    def test_sidecar_without_trailing_newline(self, tmp_path):
        path = self._block(tmp_path)
        with open(path + ".labels", "w", encoding="utf-8") as fh:
            fh.write("a\nb\nc\nd")  # final label unterminated
        csr = load_csr(path)
        try:
            assert list(csr.labels) == ["a", "b", "c", "d"]
            assert csr.labels[3] == "d"
        finally:
            csr.close()

    def test_storage_close_releases_the_label_mapping(self, tmp_path):
        csr = load_csr(self._block(tmp_path))
        store = csr.labels
        _ = store[0]  # force the mapping open
        assert store._mm is not None
        csr.close()
        assert not store._state  # extra_close drained the finalizer state

    def test_delete_on_close_with_open_label_map(self, tmp_path):
        path = self._block(tmp_path)
        csr = load_csr(path, delete_on_close=True)
        _ = csr.labels[1]
        csr.close()
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".labels")

    def test_close_before_first_access_is_safe(self, tmp_path):
        csr = load_csr(self._block(tmp_path))
        csr.close()  # never touched the labels; nothing to unmap

"""Tests for landmark selection and the landmark distance oracle (§6.6)."""

import pytest

from repro.applications.landmarks import (
    LANDMARK_STRATEGIES,
    LandmarkOracle,
    evaluate_landmarks,
    select_landmarks,
)
from repro.core import core_decomposition
from repro.errors import ParameterError, VertexNotFoundError
from repro.graph import Graph
from repro.graph.generators import barabasi_albert_graph, cycle_graph, path_graph, star_graph
from repro.traversal.bfs import bfs_distances


@pytest.fixture
def social_graph():
    return barabasi_albert_graph(80, 3, seed=5)


class TestSelectLandmarks:
    @pytest.mark.parametrize("strategy", LANDMARK_STRATEGIES)
    def test_every_strategy_returns_requested_count(self, strategy, social_graph):
        landmarks = select_landmarks(social_graph, 5, strategy=strategy, h=2, seed=1)
        assert len(landmarks) == 5
        assert len(set(landmarks)) == 5
        assert all(v in social_graph for v in landmarks)

    def test_max_core_landmarks_come_from_deep_cores(self, social_graph):
        decomposition = core_decomposition(social_graph, 2)
        landmarks = select_landmarks(social_graph, 3, strategy="max-core", h=2,
                                     seed=2, decomposition=decomposition)
        innermost = decomposition.innermost_core()
        if len(innermost) >= 3:
            assert set(landmarks) <= innermost

    def test_max_core_falls_back_to_lower_cores(self):
        # The innermost core of a path is tiny, so lower cores must be used.
        landmarks = select_landmarks(path_graph(10), 6, strategy="max-core", h=2, seed=0)
        assert len(landmarks) == 6

    def test_count_clamped_to_graph_size(self):
        landmarks = select_landmarks(cycle_graph(4), 10, strategy="random", seed=0)
        assert len(landmarks) == 4

    def test_degree_strategy_picks_hub(self):
        landmarks = select_landmarks(star_graph(6), 1, strategy="degree")
        assert landmarks == [0]

    def test_h_degree_strategy_uses_h(self, social_graph):
        by_h3 = select_landmarks(social_graph, 5, strategy="h-degree", h=3, seed=0)
        assert len(by_h3) == 5

    def test_deterministic_given_seed(self, social_graph):
        a = select_landmarks(social_graph, 4, strategy="max-core", h=2, seed=7)
        b = select_landmarks(social_graph, 4, strategy="max-core", h=2, seed=7)
        assert a == b

    def test_invalid_parameters(self, social_graph):
        with pytest.raises(ParameterError):
            select_landmarks(social_graph, 0, strategy="random")
        with pytest.raises(ParameterError):
            select_landmarks(social_graph, 3, strategy="page-rank")


class TestLandmarkOracle:
    def test_bounds_sandwich_true_distance(self, social_graph):
        landmarks = select_landmarks(social_graph, 6, strategy="closeness")
        oracle = LandmarkOracle(social_graph, landmarks)
        vertices = sorted(social_graph.vertices(), key=repr)[:10]
        for s in vertices:
            distances = bfs_distances(social_graph, s)
            for t in vertices:
                if s == t or t not in distances:
                    continue
                lower, upper = oracle.bounds(s, t)
                assert lower is not None and upper is not None
                assert lower <= distances[t] <= upper

    def test_same_vertex_distance_zero(self, social_graph):
        oracle = LandmarkOracle(social_graph, [next(iter(social_graph.vertices()))])
        vertex = next(iter(social_graph.vertices()))
        assert oracle.bounds(vertex, vertex) == (0, 0)
        assert oracle.estimate(vertex, vertex) == 0.0

    def test_upper_bound_exact_when_landmark_on_shortest_path(self):
        g = path_graph(5)
        oracle = LandmarkOracle(g, [2])
        lower, upper = oracle.bounds(0, 4)
        assert upper == 4  # the landmark lies on the 0-4 shortest path
        assert lower <= 4
        assert oracle.estimate(0, 4) == pytest.approx((lower + upper) / 2)

    def test_unreachable_pair_returns_none(self):
        g = Graph([(0, 1), (2, 3)])
        oracle = LandmarkOracle(g, [0])
        assert oracle.estimate(0, 3) is None

    def test_requires_landmarks_in_graph(self):
        with pytest.raises(VertexNotFoundError):
            LandmarkOracle(path_graph(3), [99])
        with pytest.raises(ParameterError):
            LandmarkOracle(path_graph(3), [])


class TestEvaluateLandmarks:
    def test_error_metric_in_range(self, social_graph):
        landmarks = select_landmarks(social_graph, 5, strategy="max-core", h=2, seed=3)
        evaluation = evaluate_landmarks(social_graph, landmarks, num_pairs=40,
                                        seed=4, strategy="max-core", h=2)
        assert evaluation.num_pairs > 0
        assert 0.0 <= evaluation.mean_relative_error < 1.0
        assert len(evaluation.errors) == evaluation.num_pairs

    def test_hub_landmark_on_star_has_bounded_error(self):
        # The hub lies on every shortest path, so its upper bound is always
        # exact and the midpoint error is at most 0.5 on every query.
        g = star_graph(8)
        hub = evaluate_landmarks(g, [0], num_pairs=30, seed=1)
        assert hub.mean_relative_error <= 0.5 + 1e-9
        assert all(error <= 0.5 + 1e-9 for error in hub.errors)

    def test_tiny_graph_handled(self):
        g = Graph(vertices=["only"])
        evaluation = evaluate_landmarks(g, ["only"], num_pairs=5, seed=0)
        assert evaluation.num_pairs == 0

"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.cli import build_parser, main
from repro.graph import Graph, write_edge_list


@pytest.fixture
def edge_list_file(tmp_path):
    path = tmp_path / "toy.edges"
    graph = Graph([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
    write_edge_list(graph, path)
    return path


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["graph.txt"])
        assert args.h == 2
        assert args.algorithm == "auto"
        assert not args.summary

    def test_algorithm_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["graph.txt", "--algorithm", "magic"])


class TestMain:
    def test_prints_core_indices(self, edge_list_file, capsys):
        exit_code = main([str(edge_list_file), "--h", "2"])
        assert exit_code == 0
        out = capsys.readouterr().out
        lines = [line for line in out.strip().splitlines() if line]
        assert len(lines) == 6  # one per vertex
        assert all(len(line.split()) == 2 for line in lines)

    def test_summary_mode(self, edge_list_file, capsys):
        exit_code = main([str(edge_list_file), "--h", "2", "--summary"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "core 0" in out or "core 1" in out or "core 2" in out

    def test_output_file(self, edge_list_file, tmp_path, capsys):
        target = tmp_path / "cores.txt"
        exit_code = main([str(edge_list_file), "--output", str(target)])
        assert exit_code == 0
        assert target.exists()
        assert len(target.read_text().strip().splitlines()) == 6

    def test_demo_mode(self, capsys):
        exit_code = main(["--demo", "--h", "2", "--summary"])
        assert exit_code == 0

    def test_explicit_algorithm(self, edge_list_file, capsys):
        exit_code = main([str(edge_list_file), "--algorithm", "h-LB+UB", "--h", "3"])
        assert exit_code == 0

    def test_missing_input_is_an_error(self, capsys):
        exit_code = main([])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_matches_library_result(self, edge_list_file, capsys):
        from repro.core import core_decomposition
        from repro.graph import read_edge_list
        main([str(edge_list_file), "--h", "2"])
        out = capsys.readouterr().out
        cli_cores = {}
        for line in out.strip().splitlines():
            vertex, core = line.split()
            cli_cores[int(vertex)] = int(core)
        expected = core_decomposition(read_edge_list(edge_list_file), 2).core_index
        assert cli_cores == expected


class TestExecutorFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["graph.txt"])
        assert args.executor == "thread"
        assert args.workers is None
        # --threads defaults to None so the shared deprecation shim can
        # tell an explicit legacy request apart from "not given".
        assert args.threads is None

    def test_executor_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["graph.txt", "--executor", "gpu"])

    def test_process_executor_matches_serial(self, edge_list_file, capsys):
        main([str(edge_list_file), "--h", "2"])
        serial_out = capsys.readouterr().out
        exit_code = main([str(edge_list_file), "--h", "2", "--workers", "2",
                          "--executor", "process"])
        assert exit_code == 0
        assert capsys.readouterr().out == serial_out

    def test_demo_process_smoke(self, capsys):
        exit_code = main(["--demo", "--h", "2", "--workers", "2",
                          "--executor", "process", "--summary"])
        assert exit_code == 0
        assert "core" in capsys.readouterr().out

    def test_verbose_reports_executor(self, edge_list_file, capsys):
        exit_code = main([str(edge_list_file), "--h", "2", "--verbose",
                          "--workers", "3", "--executor", "serial"])
        assert exit_code == 0
        assert "# executor: serial, workers: 3" in capsys.readouterr().err

    def test_workers_defaults_to_threads_value(self, edge_list_file, capsys):
        exit_code = main([str(edge_list_file), "--h", "2", "--verbose",
                          "--threads", "2"])
        assert exit_code == 0
        assert "# executor: thread, workers: 2" in capsys.readouterr().err


class TestVerboseBackend:
    def test_verbose_surfaces_resolved_backend(self, edge_list_file, capsys):
        exit_code = main([str(edge_list_file), "--h", "2", "--verbose"])
        assert exit_code == 0
        err = capsys.readouterr().err
        assert "# backend: csr (requested: auto)" in err

    def test_verbose_respects_csr_threshold(self, edge_list_file, capsys):
        exit_code = main([str(edge_list_file), "--h", "2", "--verbose",
                          "--csr-threshold", "1000"])
        assert exit_code == 0
        assert "# backend: dict (requested: auto)" in capsys.readouterr().err

    def test_quiet_by_default(self, edge_list_file, capsys):
        main([str(edge_list_file), "--h", "2"])
        assert "# backend" not in capsys.readouterr().err


class TestStreamSubcommand:
    @pytest.fixture
    def update_file(self, tmp_path):
        path = tmp_path / "updates.txt"
        path.write_text("# toy stream\n+ 0 3\n- 3 4\n+ 1 4\n")
        return path

    def test_replay_matches_from_scratch(self, edge_list_file, update_file,
                                         capsys):
        from repro.core import core_decomposition
        from repro.graph import read_edge_list

        exit_code = main(["stream", str(update_file),
                          "--graph", str(edge_list_file), "--h", "2"])
        assert exit_code == 0
        out = capsys.readouterr().out
        got = {int(line.split()[0]): int(line.split()[1])
               for line in out.strip().splitlines()}
        graph = read_edge_list(edge_list_file)
        graph.add_edge(0, 3)
        graph.remove_edge(3, 4)
        graph.add_edge(1, 4)
        assert got == core_decomposition(graph, 2).core_index

    def test_summary_and_stats(self, edge_list_file, update_file, capsys):
        exit_code = main(["stream", str(update_file),
                          "--graph", str(edge_list_file), "--summary"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "replayed 3 updates" in captured.err
        assert "core" in captured.out

    def test_verbose_reports_batches_and_backend(self, edge_list_file,
                                                 update_file, capsys):
        exit_code = main(["stream", str(update_file),
                          "--graph", str(edge_list_file),
                          "--batch-size", "2", "--verbose"])
        assert exit_code == 0
        err = capsys.readouterr().err
        assert "# backend:" in err
        assert "# batch 0:" in err
        assert "# batch 1:" in err

    def test_output_file(self, edge_list_file, update_file, tmp_path, capsys):
        target = tmp_path / "cores.txt"
        exit_code = main(["stream", str(update_file),
                          "--graph", str(edge_list_file),
                          "--output", str(target)])
        assert exit_code == 0
        assert len(target.read_text().strip().splitlines()) == 6

    def test_empty_start_graph_delete_errors_cleanly(self, update_file,
                                                     capsys):
        exit_code = main(["stream", str(update_file)])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_update_file_errors_cleanly(self, tmp_path, capsys):
        exit_code = main(["stream", str(tmp_path / "nope.txt")])
        assert exit_code == 2

    def test_malformed_stream_errors_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("+ 1\n")
        exit_code = main(["stream", str(bad)])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_fallback_ratio_forwarded(self, edge_list_file, update_file,
                                      capsys):
        exit_code = main(["stream", str(update_file),
                          "--graph", str(edge_list_file),
                          "--fallback-ratio", "0.0", "--verbose"])
        assert exit_code == 0
        assert "mode=full" in capsys.readouterr().err


class TestNumpyBackendFlags:
    """--backend numpy and --relabel (PR 5)."""

    def test_relabel_choices(self):
        args = build_parser().parse_args(["g.txt", "--relabel", "degree"])
        assert args.relabel == "degree"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["g.txt", "--relabel", "random"])

    def test_backend_numpy_accepted_by_parser(self):
        args = build_parser().parse_args(["g.txt", "--backend", "numpy"])
        assert args.backend == "numpy"

    def test_relabel_does_not_change_output(self, edge_list_file, capsys):
        assert main([str(edge_list_file), "--h", "2"]) == 0
        plain = capsys.readouterr().out
        assert main([str(edge_list_file), "--h", "2",
                     "--relabel", "bfs"]) == 0
        assert capsys.readouterr().out == plain

    def test_numpy_backend_runs_or_fails_cleanly(self, edge_list_file,
                                                 capsys):
        from repro.core.backends import numpy_available

        exit_code = main([str(edge_list_file), "--h", "2", "--backend",
                          "numpy", "--verbose"])
        out = capsys.readouterr()
        if numpy_available():
            assert exit_code == 0
            assert "# backend: numpy (requested: numpy)" in out.err
        else:
            # A clear one-line error, not a traceback — naming either the
            # missing optional dependency or the kill switch, whichever is
            # the actual cause.
            assert exit_code == 2
            assert ("optional NumPy" in out.err
                    or "KH_CORE_DISABLE_NUMPY" in out.err)

    def test_auto_prefers_numpy_over_threshold(self, edge_list_file,
                                               capsys, monkeypatch):
        from repro.core.backends import numpy_available

        if not numpy_available():
            pytest.skip("NumPy not installed")
        monkeypatch.setenv("KH_CORE_NUMPY_THRESHOLD", "0")
        assert main([str(edge_list_file), "--h", "2", "--verbose"]) == 0
        assert "# backend: numpy (requested: auto)" in capsys.readouterr().err

    def test_stream_accepts_relabel(self, tmp_path, capsys):
        updates = tmp_path / "updates.txt"
        updates.write_text("+ 0 1\n+ 1 2\n+ 2 0\n")
        from repro.cli import stream_main

        assert stream_main([str(updates), "--h", "2",
                            "--relabel", "degree", "--summary"]) == 0
        assert "core" in capsys.readouterr().out


class TestIndexSubcommand:
    @pytest.fixture
    def built_index(self, edge_list_file, tmp_path):
        db = tmp_path / "toy.khidx"
        assert main(["index", "build", str(edge_list_file),
                     "--db", str(db), "--h-values", "1,2"]) == 0
        return db

    def run_json(self, argv, capsys):
        import json

        assert main(argv) == 0
        return json.loads(capsys.readouterr().out)

    def test_build_reports_and_creates_file(self, edge_list_file, tmp_path,
                                            capsys):
        db = tmp_path / "toy.khidx"
        report = self.run_json(["index", "build", str(edge_list_file),
                                "--db", str(db), "--h-values", "1,2"],
                               capsys)
        assert db.exists()
        assert report["h_values"] == [1, 2]
        assert report["num_vertices"] == 6
        assert report["epoch"] == 1

    def test_build_refuses_overwrite_without_force(self, built_index,
                                                   edge_list_file, capsys):
        assert main(["index", "build", str(edge_list_file),
                     "--db", str(built_index)]) == 2
        assert "already exists" in capsys.readouterr().err
        assert main(["index", "build", str(edge_list_file),
                     "--db", str(built_index), "--force"]) == 0

    def test_query_core_number_matches_decompose(self, built_index,
                                                 edge_list_file, capsys):
        from repro.core import core_decomposition
        from repro.graph import read_edge_list

        expected = core_decomposition(read_edge_list(edge_list_file),
                                      2).core_index
        out = self.run_json(["index", "query", str(built_index),
                             "core-number", "--v", "2", "--h", "2"], capsys)
        assert out["core"] == expected[2]

    def test_query_spectrum_threshold_core_sizes(self, built_index, capsys):
        spectrum = self.run_json(["index", "query", str(built_index),
                                  "spectrum", "--v", "0"], capsys)
        assert set(spectrum["spectrum"]) == {"1", "2"}
        threshold = self.run_json(["index", "query", str(built_index),
                                   "threshold", "--v", "0", "--k", "1"],
                                  capsys)
        assert threshold["min_h"] == 1
        core = self.run_json(["index", "query", str(built_index), "core",
                              "--k", "1", "--h", "2"], capsys)
        assert core["size"] == len(core["members"]) > 0
        sizes = self.run_json(["index", "query", str(built_index), "sizes",
                               "--h", "1"], capsys)
        assert sizes["degeneracy"] >= 1

    def test_query_missing_required_flag_errors(self, built_index, capsys):
        assert main(["index", "query", str(built_index),
                     "core-number", "--v", "2"]) == 2
        assert "requires --h" in capsys.readouterr().err

    def test_refresh_then_query_and_stats(self, built_index, tmp_path,
                                          capsys):
        updates = tmp_path / "updates.txt"
        updates.write_text("+ 0 4\n+ 1 5\n")
        # staleness-ratio 1.0 keeps the toy store on the incremental path,
        # so the delta log survives and the diff below can span all epochs.
        summaries = self.run_json(["index", "refresh", str(built_index),
                                   str(updates), "--batch-size", "1",
                                   "--staleness-ratio", "1.0"],
                                  capsys)
        assert len(summaries) == 2
        assert all(s["mode"] in ("incremental", "noop") for s in summaries)
        stats = self.run_json(["index", "stats", str(built_index),
                               "--verify"], capsys)
        assert stats["current_epoch"] == 3
        assert stats["status"] == "complete"
        diff = self.run_json(["index", "query", str(built_index), "diff",
                              "--from", "1"], capsys)
        assert diff["to"] == 3

    def test_stale_order_errors_cleanly(self, built_index, tmp_path,
                                        capsys):
        updates = tmp_path / "updates.txt"
        updates.write_text("+ 0 4\n")
        assert main(["index", "refresh", str(built_index),
                     str(updates)]) == 0
        capsys.readouterr()
        assert main(["index", "query", str(built_index), "order",
                     "--h", "1"]) == 2
        assert "rebuild" in capsys.readouterr().err

    def test_corrupt_db_errors_cleanly(self, tmp_path, capsys):
        junk = tmp_path / "junk.khidx"
        junk.write_text("not a database")
        assert main(["index", "stats", str(junk)]) == 2
        assert "error:" in capsys.readouterr().err


class TestDatasetsSubcommand:
    def test_list_names(self, capsys):
        assert main(["datasets", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("coli", "jazz", "lj"):
            assert name in out

    def test_export_roundtrip_and_determinism(self, tmp_path, capsys):
        from repro.graph import read_edge_list

        first = tmp_path / "a.edges"
        second = tmp_path / "b.edges"
        assert main(["datasets", "export", "jazz", str(first),
                     "--scale", "tiny"]) == 0
        assert main(["datasets", "export", "jazz", str(second),
                     "--scale", "tiny"]) == 0
        assert first.read_bytes() == second.read_bytes()
        graph = read_edge_list(first)
        assert "40 vertices" in capsys.readouterr().err
        assert graph.num_vertices == 40

    def test_export_unknown_dataset_errors(self, tmp_path, capsys):
        assert main(["datasets", "export", "wikipedia",
                     str(tmp_path / "x.edges")]) == 2
        assert "error:" in capsys.readouterr().err


class TestLoadCommand:
    def test_load_writes_block_file(self, edge_list_file, tmp_path, capsys):
        out = tmp_path / "toy.khcsr"
        assert main(["load", str(edge_list_file), "--out", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().err

    def test_load_json_reports_stats_and_rss(self, edge_list_file, tmp_path,
                                             capsys):
        import json

        out = tmp_path / "toy.khcsr"
        assert main(["load", str(edge_list_file), "--out", str(out),
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["vertices"] == 6
        assert stats["edges"] == 7
        assert stats["max_rss_kb"] > 0
        assert stats["out"] == str(out)

    def test_load_default_out_path(self, edge_list_file, capsys):
        assert main(["load", str(edge_list_file)]) == 0
        assert (edge_list_file.parent / "toy.edges.khcsr").exists()

    def test_load_missing_input_errors_cleanly(self, tmp_path, capsys):
        assert main(["load", str(tmp_path / "none.edges")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_load_external_relabel_flag(self, edge_list_file, tmp_path,
                                        capsys):
        import json

        out = tmp_path / "toy.khcsr"
        assert main(["load", str(edge_list_file), "--out", str(out),
                     "--json", "--external-relabel"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["external_relabel"] is True


class TestBlockFileInput:
    @pytest.fixture
    def block_file(self, edge_list_file, tmp_path):
        out = tmp_path / "toy.khcsr"
        assert main(["load", str(edge_list_file), "--out", str(out)]) == 0
        return out

    def test_decompose_block_file_matches_edge_list(self, edge_list_file,
                                                    block_file, capsys):
        assert main([str(edge_list_file), "--h", "2"]) == 0
        from_edges = capsys.readouterr().out
        assert main([str(block_file), "--h", "2"]) == 0
        assert capsys.readouterr().out == from_edges

    def test_storage_mmap_flag_matches_default(self, edge_list_file, capsys):
        assert main([str(edge_list_file), "--h", "2"]) == 0
        baseline = capsys.readouterr().out
        assert main([str(edge_list_file), "--h", "2", "--storage", "mmap",
                     "--backend", "csr"]) == 0
        assert capsys.readouterr().out == baseline

    def test_stream_rejects_block_file(self, block_file, tmp_path, capsys):
        updates = tmp_path / "u.txt"
        updates.write_text("+ 0 5\n")
        assert main(["stream", str(updates), "--graph",
                     str(block_file)]) == 2
        assert "read-only" in capsys.readouterr().err

    def test_serve_rejects_block_file(self, block_file, capsys):
        assert main(["serve", str(block_file)]) == 2
        assert "read-only" in capsys.readouterr().err

    def test_index_build_accepts_block_file(self, block_file, tmp_path,
                                            capsys):
        db = tmp_path / "toy.khidx"
        assert main(["index", "build", str(block_file), "--db", str(db),
                     "--h-values", "1,2"]) == 0
        assert db.exists()
        assert main(["index", "query", str(db), "sizes", "--h", "2"]) == 0


class TestDatasetsFetchCommand:
    def test_fetch_prints_cached_path(self, tmp_path, capsys, monkeypatch):
        from repro.datasets import fetch as fetch_mod

        payload = tmp_path / "up.txt"
        payload.write_text("1 2\n2 3\n")
        monkeypatch.setitem(
            fetch_mod._REAL, "clitest",
            fetch_mod.RealDatasetSpec("clitest", payload.as_uri(), "local",
                                      "cli fixture", archive="plain"))
        assert main(["datasets", "fetch", "clitest", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        printed = capsys.readouterr().out.strip()
        assert printed.endswith("clitest.txt")
        assert open(printed).read() == "1 2\n2 3\n"

    def test_fetch_unknown_dataset_errors(self, tmp_path, capsys):
        assert main(["datasets", "fetch", "not-a-dataset", "--cache-dir",
                     str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_list_marks_real_datasets(self, capsys):
        assert main(["datasets", "list"]) == 0
        out = capsys.readouterr().out
        assert "[real]" in out
        # coli has no public mirror and must stay unmarked.
        coli_line = next(line for line in out.splitlines()
                         if line.startswith("coli"))
        assert "[real]" not in coli_line

"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.cli import build_parser, main
from repro.graph import Graph, write_edge_list


@pytest.fixture
def edge_list_file(tmp_path):
    path = tmp_path / "toy.edges"
    graph = Graph([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
    write_edge_list(graph, path)
    return path


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["graph.txt"])
        assert args.h == 2
        assert args.algorithm == "auto"
        assert not args.summary

    def test_algorithm_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["graph.txt", "--algorithm", "magic"])


class TestMain:
    def test_prints_core_indices(self, edge_list_file, capsys):
        exit_code = main([str(edge_list_file), "--h", "2"])
        assert exit_code == 0
        out = capsys.readouterr().out
        lines = [line for line in out.strip().splitlines() if line]
        assert len(lines) == 6  # one per vertex
        assert all(len(line.split()) == 2 for line in lines)

    def test_summary_mode(self, edge_list_file, capsys):
        exit_code = main([str(edge_list_file), "--h", "2", "--summary"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "core 0" in out or "core 1" in out or "core 2" in out

    def test_output_file(self, edge_list_file, tmp_path, capsys):
        target = tmp_path / "cores.txt"
        exit_code = main([str(edge_list_file), "--output", str(target)])
        assert exit_code == 0
        assert target.exists()
        assert len(target.read_text().strip().splitlines()) == 6

    def test_demo_mode(self, capsys):
        exit_code = main(["--demo", "--h", "2", "--summary"])
        assert exit_code == 0

    def test_explicit_algorithm(self, edge_list_file, capsys):
        exit_code = main([str(edge_list_file), "--algorithm", "h-LB+UB", "--h", "3"])
        assert exit_code == 0

    def test_missing_input_is_an_error(self, capsys):
        exit_code = main([])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_matches_library_result(self, edge_list_file, capsys):
        from repro.core import core_decomposition
        from repro.graph import read_edge_list
        main([str(edge_list_file), "--h", "2"])
        out = capsys.readouterr().out
        cli_cores = {}
        for line in out.strip().splitlines():
            vertex, core = line.split()
            cli_cores[int(vertex)] = int(core)
        expected = core_decomposition(read_edge_list(edge_list_file), 2).core_index
        assert cli_cores == expected

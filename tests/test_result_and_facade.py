"""Tests for the CoreDecomposition result object and the core_decomposition facade."""

import pytest

from repro.core import (
    ALGORITHMS,
    CoreDecomposition,
    build_partitions,
    core_decomposition,
    core_decomposition_with_report,
)
from repro.errors import InvalidDistanceThresholdError, ParameterError
from repro.graph import Graph
from repro.graph.generators import complete_graph, cycle_graph, erdos_renyi_graph, star_graph
from repro.instrumentation import Counters


@pytest.fixture
def decomposition(paper_style_graph):
    return core_decomposition(paper_style_graph, 2)


class TestCoreDecompositionResult:
    def test_validation_requires_all_vertices(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError):
            CoreDecomposition(g, 2, {0: 1})

    def test_degeneracy_and_distinct_cores(self, decomposition):
        assert decomposition.degeneracy == max(decomposition.core_index.values())
        assert decomposition.max_core_index == decomposition.degeneracy
        assert decomposition.num_distinct_cores == len(set(decomposition.core_index.values()))

    def test_core_nesting(self, decomposition):
        for k in range(decomposition.degeneracy):
            assert decomposition.core(k + 1) <= decomposition.core(k)

    def test_core_zero_is_everything(self, decomposition, paper_style_graph):
        assert decomposition.core(0) == set(paper_style_graph.vertices())

    def test_core_subgraph_and_view(self, decomposition):
        k = decomposition.degeneracy
        subgraph = decomposition.core_subgraph(k)
        view = decomposition.core_view(k)
        assert set(subgraph.vertices()) == decomposition.core(k)
        assert view.vertex_set == decomposition.core(k)

    def test_innermost_core_nonempty(self, decomposition):
        innermost = decomposition.innermost_core()
        assert innermost
        assert innermost == decomposition.core(decomposition.degeneracy)

    def test_shells_partition_vertices(self, decomposition, paper_style_graph):
        shells = decomposition.shells()
        union = set()
        for members in shells.values():
            assert not union & members
            union |= members
        assert union == set(paper_style_graph.vertices())

    def test_core_sizes_monotone(self, decomposition):
        sizes = decomposition.core_sizes()
        values = [sizes[k] for k in sorted(sizes)]
        assert values == sorted(values, reverse=True)
        assert sizes[0] == len(decomposition.core_index)

    def test_vertices_with_core(self, decomposition):
        k = decomposition.degeneracy
        assert set(decomposition.vertices_with_core(k)) == decomposition.core(k)

    def test_normalized_core_index(self, decomposition):
        normalized = decomposition.normalized_core_index()
        assert all(0.0 <= value <= 1.0 for value in normalized.values())
        assert max(normalized.values()) == pytest.approx(1.0)

    def test_normalized_on_edgeless_graph(self):
        g = Graph(vertices=[1, 2])
        result = core_decomposition(g, 2)
        assert result.normalized_core_index() == {1: 0.0, 2: 0.0}

    def test_getitem_and_eq_and_repr(self, decomposition, paper_style_graph):
        vertex = next(iter(paper_style_graph.vertices()))
        assert decomposition[vertex] == decomposition.core_index[vertex]
        same = core_decomposition(paper_style_graph, 2, algorithm="h-BZ")
        assert decomposition == same
        assert decomposition != 17
        assert "h=2" in repr(decomposition)


class TestFacade:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ParameterError):
            core_decomposition(cycle_graph(4), 2, algorithm="magic")

    def test_invalid_h_rejected(self):
        with pytest.raises(InvalidDistanceThresholdError):
            core_decomposition(cycle_graph(4), 0)

    def test_classic_requires_h1(self):
        with pytest.raises(ParameterError):
            core_decomposition(cycle_graph(4), 2, algorithm="classic")

    def test_auto_dispatch_h1(self):
        result = core_decomposition(cycle_graph(6), 1)
        assert result.algorithm == "classic-BZ"

    def test_auto_dispatch_small_graph(self):
        result = core_decomposition(cycle_graph(6), 2)
        assert result.algorithm == "h-LB"

    def test_all_algorithms_listed(self):
        assert set(ALGORITHMS) == {"auto", "classic", "naive", "h-BZ", "h-LB", "h-LB+UB"}

    @pytest.mark.parametrize("algorithm", ["naive", "h-BZ", "h-LB", "h-LB+UB"])
    def test_explicit_algorithms_agree(self, algorithm, seeded_random_graph):
        reference = core_decomposition(seeded_random_graph, 2, algorithm="naive")
        result = core_decomposition(seeded_random_graph, 2, algorithm=algorithm)
        assert result.core_index == reference.core_index

    def test_counters_forwarded(self):
        counters = Counters()
        core_decomposition(erdos_renyi_graph(15, 0.2, seed=1), 2,
                           algorithm="h-BZ", counters=counters)
        assert counters.vertices_visited > 0

    def test_report_wrapper(self):
        report = core_decomposition_with_report(complete_graph(6), 2,
                                                algorithm="h-LB",
                                                dataset_name="K6")
        assert report.dataset == "K6"
        assert report.h == 2
        assert report.seconds >= 0.0
        assert report.result.degeneracy == 5
        assert report.params["partition_size"] == 1

    def test_star_example_quickstart(self):
        # The docstring example: every vertex of a star is in the (n,2)-core.
        result = core_decomposition(star_graph(4), 2)
        assert result.degeneracy == 4


class TestBuildPartitions:
    def test_paper_example_s2(self):
        ubs = {f"v{i}": value for i, value in enumerate([5, 10, 15, 20, 25, 30])}
        partitions = build_partitions(ubs, min_lower_bound=3, partition_size=2)
        assert partitions == [(21, 30), (11, 20), (3, 10)]

    def test_paper_example_s1(self):
        ubs = {f"v{i}": value for i, value in enumerate([5, 10, 15, 20, 25, 30])}
        partitions = build_partitions(ubs, min_lower_bound=3, partition_size=1)
        assert partitions == [(26, 30), (21, 25), (16, 20), (11, 15), (6, 10), (3, 5)]

    def test_covers_every_core_value(self):
        ubs = {"a": 4, "b": 7, "c": 2}
        partitions = build_partitions(ubs, min_lower_bound=1, partition_size=1)
        covered = set()
        for kmin, kmax in partitions:
            covered.update(range(kmin, kmax + 1))
        assert covered >= set(range(1, 8))

    def test_partitions_are_top_down_and_disjoint(self):
        ubs = {i: i for i in range(1, 20)}
        partitions = build_partitions(ubs, min_lower_bound=1, partition_size=3)
        flattened = []
        for kmin, kmax in partitions:
            assert kmin <= kmax
            flattened.append((kmin, kmax))
        # strictly decreasing kmax and no overlaps
        for (lo1, hi1), (lo2, hi2) in zip(flattened, flattened[1:]):
            assert hi2 < lo1

    def test_invalid_partition_size(self):
        with pytest.raises(ParameterError):
            build_partitions({"a": 3}, min_lower_bound=1, partition_size=0)

"""Tests for the scheduling layer of the parallel h-degree computation (§4.6)."""

import pytest

from repro.core.parallel import (
    EXECUTORS,
    _chunks,
    chunk_plan,
    compute_h_degrees,
    map_batches,
)
from repro.errors import ParameterError
from repro.graph.generators import cycle_graph, erdos_renyi_graph
from repro.instrumentation import Counters
from repro.traversal.hneighborhood import all_h_degrees


class TestChunks:
    def test_single_chunk(self):
        assert _chunks([1, 2, 3], 1) == [[1, 2, 3]]

    def test_split_roughly_even(self):
        chunks = _chunks(list(range(10)), 3)
        assert sum(len(c) for c in chunks) == 10
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1

    def test_more_chunks_than_items(self):
        chunks = _chunks([1, 2], 8)
        assert sum(len(c) for c in chunks) == 2

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 9, 10, 11, 16, 17, 23])
    @pytest.mark.parametrize("num_chunks", [1, 2, 3, 4, 5, 8])
    def test_exact_chunk_count_on_boundary_sizes(self, n, num_chunks):
        """Never more than ``num_chunks`` chunks — each extra chunk used to
        be a wasted process-pool round-trip on non-divisible sizes."""
        items = list(range(n))
        chunks = _chunks(items, num_chunks)
        if num_chunks <= 1 or n <= 1:
            assert chunks == [items]
        else:
            assert len(chunks) == min(num_chunks, n)
            assert all(chunk for chunk in chunks)
            sizes = [len(chunk) for chunk in chunks]
            assert max(sizes) - min(sizes) <= 1
        assert [x for chunk in chunks for x in chunk] == items

    def test_empty_items_single_empty_chunk(self):
        # Historical contract: map_batches hands one (empty) batch through.
        assert _chunks([], 4) == [[]]


class TestChunkPlan:
    def test_unweighted_matches_exact_chunks(self):
        assert chunk_plan(list(range(10)), 3) == _chunks(list(range(10)), 3)

    def test_empty(self):
        assert chunk_plan([], 4) == []

    def test_weighted_balances_skew(self):
        # One hub (weight 100) plus many light vertices: LPT must isolate
        # the hub instead of stacking light items behind it.
        items = list(range(9))
        weights = [100] + [1] * 8
        chunks = chunk_plan(items, 4, weights=weights)
        assert len(chunks) <= 4
        loads = [sum(weights[items.index(x)] for x in chunk)
                 for chunk in chunks]
        assert max(loads) == 100  # the hub rides alone
        assert sorted(x for chunk in chunks for x in chunk) == items

    def test_weighted_covers_all_items(self):
        items = [f"v{i}" for i in range(13)]
        weights = [(i * 7) % 5 + 1 for i in range(13)]
        chunks = chunk_plan(items, 4, weights=weights)
        assert sorted(x for chunk in chunks for x in chunk) == sorted(items)

    def test_weight_length_mismatch(self):
        with pytest.raises(ParameterError):
            chunk_plan([1, 2, 3], 2, weights=[1])


def _square_worker(batch, local):
    """Module-level worker: picklable for the generic process mode."""
    local.bump("batches")
    return {x: x * x for x in batch}


class TestMapBatches:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_executors_agree(self, executor):
        targets = list(range(20))
        expected = {x: x * x for x in targets}
        counters = Counters()
        result = map_batches(targets, 3, _square_worker, counters,
                             executor=executor)
        assert result == expected
        assert counters.extra["batches"] >= 1

    def test_unknown_executor(self):
        with pytest.raises(ParameterError):
            map_batches([1, 2], 2, _square_worker, executor="fibers")

    def test_weighted_dispatch(self):
        targets = list(range(12))
        weights = [10] + [1] * 11
        result = map_batches(targets, 3, _square_worker, executor="thread",
                             weights=weights)
        assert result == {x: x * x for x in targets}


class TestComputeHDegrees:
    @pytest.mark.parametrize("num_threads", [1, 2, 4])
    def test_matches_sequential_reference(self, num_threads):
        graph = erdos_renyi_graph(30, 0.15, seed=1)
        expected = all_h_degrees(graph, 2)
        assert compute_h_degrees(graph, 2, num_threads=num_threads) == expected

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_executors_match_reference(self, executor):
        graph = erdos_renyi_graph(30, 0.15, seed=4)
        expected = all_h_degrees(graph, 2)
        assert compute_h_degrees(graph, 2, num_threads=2,
                                 executor=executor) == expected

    def test_alive_restriction(self):
        graph = cycle_graph(10)
        alive = {0, 1, 2, 3, 4}
        expected = all_h_degrees(graph, 2, alive=alive)
        assert compute_h_degrees(graph, 2, alive=alive, num_threads=3) == expected

    def test_alive_restriction_process(self):
        graph = cycle_graph(10)
        alive = {0, 1, 2, 3, 4}
        expected = all_h_degrees(graph, 2, alive=alive)
        assert compute_h_degrees(graph, 2, alive=alive, num_threads=2,
                                 executor="process") == expected

    def test_explicit_vertex_subset(self):
        graph = cycle_graph(8)
        result = compute_h_degrees(graph, 2, vertices=[0, 4], num_threads=2)
        assert set(result) == {0, 4}

    def test_counters_merged_across_threads(self):
        graph = erdos_renyi_graph(25, 0.2, seed=2)
        sequential_counters = Counters()
        compute_h_degrees(graph, 2, num_threads=1, counters=sequential_counters)
        threaded_counters = Counters()
        compute_h_degrees(graph, 2, num_threads=4, counters=threaded_counters)
        assert threaded_counters.vertices_visited == sequential_counters.vertices_visited
        assert threaded_counters.hdegree_computations == sequential_counters.hdegree_computations

    def test_counters_merged_across_processes(self):
        graph = erdos_renyi_graph(25, 0.2, seed=2)
        sequential_counters = Counters()
        compute_h_degrees(graph, 2, num_threads=1, counters=sequential_counters)
        process_counters = Counters()
        compute_h_degrees(graph, 2, num_threads=2, counters=process_counters,
                          executor="process")
        assert process_counters.vertices_visited == sequential_counters.vertices_visited
        assert process_counters.hdegree_computations == sequential_counters.hdegree_computations

    def test_process_executor_non_integer_labels(self):
        """The process path snapshots to CSR even for string vertices."""
        graph = erdos_renyi_graph(18, 0.2, seed=5)
        relabeled_edges = [(f"a{u}", f"a{v}") for u, v in graph.edges()]
        from repro.graph import Graph
        labeled = Graph(relabeled_edges)
        expected = all_h_degrees(labeled, 2)
        assert compute_h_degrees(labeled, 2, num_threads=2,
                                 executor="process") == expected

    def test_unknown_executor(self):
        graph = cycle_graph(5)
        with pytest.raises(ParameterError):
            compute_h_degrees(graph, 2, executor="gpu")

    def test_empty_vertex_list(self):
        graph = cycle_graph(5)
        assert compute_h_degrees(graph, 2, vertices=[], num_threads=2) == {}

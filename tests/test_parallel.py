"""Tests for the multi-threaded h-degree computation (§4.6)."""

import pytest

from repro.core.parallel import compute_h_degrees, _chunks
from repro.graph.generators import cycle_graph, erdos_renyi_graph
from repro.instrumentation import Counters
from repro.traversal.hneighborhood import all_h_degrees


class TestChunks:
    def test_single_chunk(self):
        assert _chunks([1, 2, 3], 1) == [[1, 2, 3]]

    def test_split_roughly_even(self):
        chunks = _chunks(list(range(10)), 3)
        assert sum(len(c) for c in chunks) == 10
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 4

    def test_more_chunks_than_items(self):
        chunks = _chunks([1, 2], 8)
        assert sum(len(c) for c in chunks) == 2


class TestComputeHDegrees:
    @pytest.mark.parametrize("num_threads", [1, 2, 4])
    def test_matches_sequential_reference(self, num_threads):
        graph = erdos_renyi_graph(30, 0.15, seed=1)
        expected = all_h_degrees(graph, 2)
        assert compute_h_degrees(graph, 2, num_threads=num_threads) == expected

    def test_alive_restriction(self):
        graph = cycle_graph(10)
        alive = {0, 1, 2, 3, 4}
        expected = all_h_degrees(graph, 2, alive=alive)
        assert compute_h_degrees(graph, 2, alive=alive, num_threads=3) == expected

    def test_explicit_vertex_subset(self):
        graph = cycle_graph(8)
        result = compute_h_degrees(graph, 2, vertices=[0, 4], num_threads=2)
        assert set(result) == {0, 4}

    def test_counters_merged_across_threads(self):
        graph = erdos_renyi_graph(25, 0.2, seed=2)
        sequential_counters = Counters()
        compute_h_degrees(graph, 2, num_threads=1, counters=sequential_counters)
        threaded_counters = Counters()
        compute_h_degrees(graph, 2, num_threads=4, counters=threaded_counters)
        assert threaded_counters.vertices_visited == sequential_counters.vertices_visited
        assert threaded_counters.hdegree_computations == sequential_counters.hdegree_computations

    def test_empty_vertex_list(self):
        graph = cycle_graph(5)
        assert compute_h_degrees(graph, 2, vertices=[], num_threads=2) == {}

"""Unit tests for graph sampling (snowball, random vertex/edge samples)."""

import pytest

from repro.errors import ParameterError
from repro.graph.generators import barabasi_albert_graph, erdos_renyi_graph
from repro.graph.sampling import random_edge_sample, random_vertex_sample, snowball_sample
from repro.traversal.components import connected_components


@pytest.fixture
def base_graph():
    return barabasi_albert_graph(120, 3, seed=0)


class TestSnowballSample:
    def test_exact_size(self, base_graph):
        sample = snowball_sample(base_graph, 40, seed=1)
        assert sample.num_vertices == 40

    def test_whole_graph_when_target_too_large(self, base_graph):
        sample = snowball_sample(base_graph, 10_000, seed=1)
        assert sample.num_vertices == base_graph.num_vertices

    def test_determinism(self, base_graph):
        assert snowball_sample(base_graph, 30, seed=5) == snowball_sample(base_graph, 30, seed=5)

    def test_sample_is_induced_subgraph(self, base_graph):
        sample = snowball_sample(base_graph, 25, seed=2)
        for u, v in sample.edges():
            assert base_graph.has_edge(u, v)
        induced = base_graph.subgraph(sample.vertices())
        assert induced == sample

    def test_bfs_sample_mostly_connected(self, base_graph):
        # The base graph is connected, so a snowball sample is one BFS ball.
        sample = snowball_sample(base_graph, 30, seed=3)
        assert len(connected_components(sample)) == 1

    def test_invalid_target_raises(self, base_graph):
        with pytest.raises(ParameterError):
            snowball_sample(base_graph, 0)

    def test_crosses_components_when_needed(self):
        g = erdos_renyi_graph(10, 0.0, seed=0)  # 10 isolated vertices
        sample = snowball_sample(g, 4, seed=0)
        assert sample.num_vertices == 4


class TestRandomSamples:
    def test_vertex_sample_size(self, base_graph):
        sample = random_vertex_sample(base_graph, 15, seed=4)
        assert sample.num_vertices == 15

    def test_vertex_sample_invalid(self, base_graph):
        with pytest.raises(ParameterError):
            random_vertex_sample(base_graph, -1)

    def test_vertex_sample_full_graph(self, base_graph):
        assert random_vertex_sample(base_graph, 10_000, seed=1) == base_graph

    def test_edge_sample_size(self, base_graph):
        sample = random_edge_sample(base_graph, 20, seed=4)
        assert sample.num_edges == 20

    def test_edge_sample_full_graph(self, base_graph):
        assert random_edge_sample(base_graph, 10 ** 6, seed=4) == base_graph

    def test_edge_sample_invalid(self, base_graph):
        with pytest.raises(ParameterError):
            random_edge_sample(base_graph, 0)

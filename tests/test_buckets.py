"""Tests for the BucketQueue used by every peeling algorithm."""

import pytest

from repro.core import BucketQueue
from repro.instrumentation import Counters


class TestBucketQueue:
    def test_insert_and_pop(self):
        buckets = BucketQueue()
        buckets.insert("a", 3)
        buckets.insert("b", 3)
        buckets.insert("c", 1)
        assert len(buckets) == 3
        assert buckets.pop_from(1) == "c"
        assert buckets.pop_from(3) in {"a", "b"}
        assert len(buckets) == 1

    def test_pop_from_empty_bucket_returns_none(self):
        buckets = BucketQueue()
        assert buckets.pop_from(5) is None

    def test_double_insert_raises(self):
        buckets = BucketQueue()
        buckets.insert("a", 1)
        with pytest.raises(ValueError):
            buckets.insert("a", 2)

    def test_negative_key_rejected(self):
        buckets = BucketQueue()
        with pytest.raises(ValueError):
            buckets.insert("a", -1)
        buckets.insert("b", 0)
        with pytest.raises(ValueError):
            buckets.move("b", -2)

    def test_move_updates_key(self):
        buckets = BucketQueue()
        buckets.insert("a", 5)
        buckets.move("a", 2)
        assert buckets.key_of("a") == 2
        assert buckets.is_empty(5)
        assert not buckets.is_empty(2)

    def test_move_same_key_is_noop(self):
        counters = Counters()
        buckets = BucketQueue(counters)
        buckets.insert("a", 4)
        buckets.move("a", 4)
        assert counters.bucket_moves == 0
        buckets.move("a", 2)
        assert counters.bucket_moves == 1

    def test_move_missing_vertex_raises(self):
        buckets = BucketQueue()
        with pytest.raises(KeyError):
            buckets.move("ghost", 1)

    def test_remove(self):
        buckets = BucketQueue()
        buckets.insert("a", 1)
        buckets.remove("a")
        assert "a" not in buckets
        assert buckets.is_empty(1)

    def test_contains(self):
        buckets = BucketQueue()
        buckets.insert(7, 0)
        assert 7 in buckets
        assert 8 not in buckets

    def test_occupied_keys_and_min_key(self):
        buckets = BucketQueue()
        assert buckets.min_key() is None
        buckets.insert("a", 4)
        buckets.insert("b", 2)
        buckets.insert("c", 9)
        assert buckets.occupied_keys() == [2, 4, 9]
        assert buckets.min_key() == 2

    def test_clear(self):
        buckets = BucketQueue()
        buckets.insert("a", 1)
        buckets.clear()
        assert len(buckets) == 0
        assert buckets.min_key() is None

    def test_many_vertices_round_trip(self):
        buckets = BucketQueue()
        for i in range(100):
            buckets.insert(i, i % 7)
        popped = []
        for key in range(7):
            while True:
                vertex = buckets.pop_from(key)
                if vertex is None:
                    break
                popped.append(vertex)
        assert sorted(popped) == list(range(100))

"""Tests for distance-h coloring and the Theorem 1 chromatic-number bound."""

import pytest

from repro.applications.coloring import (
    chromatic_number_upper_bound,
    distance_h_greedy_coloring,
    exact_distance_h_chromatic_number,
    is_valid_distance_h_coloring,
    smallest_last_order,
)
from repro.errors import InvalidDistanceThresholdError, ParameterError
from repro.graph import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)


class TestGreedyColoring:
    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_coloring_is_valid(self, h, standard_graphs):
        for graph in standard_graphs.values():
            colors = distance_h_greedy_coloring(graph, h)
            assert is_valid_distance_h_coloring(graph, h, colors)

    def test_every_vertex_colored(self):
        g = erdos_renyi_graph(20, 0.15, seed=1)
        colors = distance_h_greedy_coloring(g, 2)
        assert set(colors) == set(g.vertices())

    def test_custom_order(self):
        g = cycle_graph(6)
        order = sorted(g.vertices())
        colors = distance_h_greedy_coloring(g, 2, order=order)
        assert is_valid_distance_h_coloring(g, 2, colors)

    def test_incomplete_order_rejected(self):
        g = cycle_graph(5)
        with pytest.raises(ParameterError):
            distance_h_greedy_coloring(g, 2, order=[0, 1])

    def test_invalid_h(self):
        with pytest.raises(InvalidDistanceThresholdError):
            distance_h_greedy_coloring(cycle_graph(4), 0)

    def test_path_h2_uses_three_colors(self):
        # On a long path, vertices within distance 2 must differ: 3 colors.
        colors = distance_h_greedy_coloring(path_graph(10), 2)
        assert len(set(colors.values())) == 3

    def test_complete_graph_needs_n_colors(self):
        colors = distance_h_greedy_coloring(complete_graph(5), 2)
        assert len(set(colors.values())) == 5


class TestSmallestLastOrder:
    def test_contains_every_vertex_once(self):
        g = erdos_renyi_graph(15, 0.2, seed=2)
        order = smallest_last_order(g, 2)
        assert sorted(order, key=repr) == sorted(g.vertices(), key=repr)

    def test_h1_uses_classic_decomposition(self):
        g = star_graph(4)
        order = smallest_last_order(g, 1)
        # The hub has the largest degree, so it is removed last.
        assert order[-1] == 0


class TestValidityChecker:
    def test_detects_conflict(self):
        g = path_graph(3)
        bad = {0: 0, 1: 1, 2: 0}
        assert is_valid_distance_h_coloring(g, 1, bad)
        assert not is_valid_distance_h_coloring(g, 2, bad)

    def test_detects_missing_vertex(self):
        g = path_graph(3)
        assert not is_valid_distance_h_coloring(g, 1, {0: 0, 1: 1})


class TestChromaticNumberBound:
    def test_bound_on_empty_graph(self):
        assert chromatic_number_upper_bound(Graph(), 2) == 0

    @pytest.mark.parametrize("h", [2, 3])
    def test_exact_number_respects_theorem1(self, h):
        # χ_h(G) <= 1 + Ĉ_h(G) on a battery of small graphs (Theorem 1).
        for seed in range(3):
            g = erdos_renyi_graph(10, 0.25, seed=seed)
            exact = exact_distance_h_chromatic_number(g, h)
            assert exact <= chromatic_number_upper_bound(g, h)

    def test_greedy_never_beats_exact(self):
        g = erdos_renyi_graph(10, 0.3, seed=5)
        exact = exact_distance_h_chromatic_number(g, 2)
        greedy_colors = len(set(distance_h_greedy_coloring(g, 2).values()))
        assert greedy_colors >= exact

    def test_exact_star_h2(self):
        # All vertices of a star are pairwise within distance 2.
        assert exact_distance_h_chromatic_number(star_graph(4), 2) == 5

    def test_exact_cycle_h2(self):
        assert exact_distance_h_chromatic_number(cycle_graph(5), 2) == 5
        assert exact_distance_h_chromatic_number(cycle_graph(6), 2) == 3

    def test_exact_guard_on_large_graphs(self):
        with pytest.raises(ParameterError):
            exact_distance_h_chromatic_number(erdos_renyi_graph(40, 0.1, seed=0), 2)

    def test_exact_empty_graph(self):
        assert exact_distance_h_chromatic_number(Graph(), 2) == 0

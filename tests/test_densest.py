"""Tests for the distance-h densest subgraph (Problem 1, Theorem 4)."""

import pytest

from repro.applications.densest import (
    average_h_degree,
    densest_core_approximation,
    exact_densest_subgraph,
    greedy_peeling_densest,
    theorem4_lower_bound,
)
from repro.core import core_decomposition
from repro.errors import InvalidDistanceThresholdError, ParameterError
from repro.graph import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)


class TestAverageHDegree:
    def test_complete_graph(self):
        g = complete_graph(5)
        assert average_h_degree(g, set(g.vertices()), 2) == pytest.approx(4.0)

    def test_empty_set(self):
        assert average_h_degree(cycle_graph(4), set(), 2) == 0.0

    def test_h2_on_path_subset(self):
        g = path_graph(5)
        # Induced subgraph {0,1,2}: each endpoint sees 2 within distance 2.
        assert average_h_degree(g, {0, 1, 2}, 2) == pytest.approx(2.0)

    def test_invalid_h(self):
        with pytest.raises(InvalidDistanceThresholdError):
            average_h_degree(cycle_graph(4), {0}, 0)


class TestExactDensest:
    def test_star_h1_vs_h2(self):
        g = star_graph(4)
        # For h = 1 the densest subgraph of a star is the whole star (avg 8/5);
        # for h = 2 every pair of leaves is close, so the whole graph has avg 4.
        assert exact_densest_subgraph(g, 1).density == pytest.approx(1.6)
        assert exact_densest_subgraph(g, 2).density == pytest.approx(4.0)

    def test_guard_on_large_graph(self):
        with pytest.raises(ParameterError):
            exact_densest_subgraph(erdos_renyi_graph(30, 0.1, seed=0), 2)

    def test_empty_graph(self):
        assert exact_densest_subgraph(Graph(), 2).density == 0.0


class TestCoreApproximation:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_theorem4_guarantee(self, seed, h):
        g = erdos_renyi_graph(11, 0.3, seed=seed)
        optimal = exact_densest_subgraph(g, h).density
        approx = densest_core_approximation(g, h).density
        assert approx >= theorem4_lower_bound(optimal) - 1e-9
        assert approx <= optimal + 1e-9

    def test_reuses_decomposition(self):
        g = erdos_renyi_graph(15, 0.2, seed=5)
        decomposition = core_decomposition(g, 2)
        direct = densest_core_approximation(g, 2)
        reused = densest_core_approximation(g, 2, decomposition=decomposition)
        assert direct.density == pytest.approx(reused.density)

    def test_empty_graph(self):
        result = densest_core_approximation(Graph(), 2)
        assert result.density == 0.0
        assert result.size == 0

    def test_result_metadata(self):
        result = densest_core_approximation(complete_graph(4), 2)
        assert result.method == "core-approximation"
        assert result.size == 4


class TestGreedyPeeling:
    @pytest.mark.parametrize("h", [1, 2])
    def test_never_worse_than_its_own_subsets_seen(self, h):
        g = erdos_renyi_graph(14, 0.25, seed=7)
        result = greedy_peeling_densest(g, h)
        # The greedy result is a feasible subgraph: density matches recomputation.
        assert result.density == pytest.approx(average_h_degree(g, result.vertices, h))

    def test_at_least_as_good_as_half_of_optimum_h1(self):
        # Classic Charikar guarantee for h = 1.
        g = erdos_renyi_graph(11, 0.3, seed=8)
        optimal = exact_densest_subgraph(g, 1).density
        assert greedy_peeling_densest(g, 1).density >= optimal / 2 - 1e-9

    def test_single_vertex_graph(self):
        g = Graph(vertices=["a"])
        result = greedy_peeling_densest(g, 2)
        assert result.density == 0.0


class TestTheorem4Bound:
    def test_monotone(self):
        assert theorem4_lower_bound(10.0) > theorem4_lower_bound(5.0)

    def test_zero(self):
        assert theorem4_lower_bound(0.0) == pytest.approx(0.0)

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            theorem4_lower_bound(-1.0)

"""Smoke and shape tests for the experiment harness (tiny scale).

These do not compare against the paper's absolute numbers; they check that
every experiment runs end-to-end, produces the expected row layout, and that
the qualitative relationships the paper reports hold where they are cheap to
verify (e.g. lower-bound algorithms never visit more vertices than h-BZ by an
order of magnitude, LB2 is tighter than LB1, the wrapper solves what the
standalone solvers solve).
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments.common import ExperimentConfig, format_table
from repro.experiments import (
    appendix_cocktail_party,
    figure3_core_sizes,
    figure4_core_distribution,
    figure5_scalability,
    figure6_core_scatter,
    figure7_centrality,
    table1_datasets,
    table2_characterization,
    table3_efficiency,
    table4_bounds,
    table5_bound_ablation,
    table6_hclub,
    table7_landmarks,
)
from repro.experiments.runner import EXPERIMENTS, build_parser, run_experiments


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(scale="tiny", seed=0, h_values=(2, 3),
                            num_landmarks=5, num_query_pairs=25,
                            hclub_time_budget_seconds=5.0)


class TestCharacterizationExperiments:
    def test_table1_rows(self, tiny_config):
        config = ExperimentConfig(scale="tiny", datasets=("coli", "rnPA"))
        rows = table1_datasets.run(config)
        assert len(rows) == 2
        assert {"dataset", "|V|", "|E|", "avg deg", "max deg", "diam"} <= set(rows[0])

    def test_table2_rows_and_monotonicity(self, tiny_config):
        config = ExperimentConfig(scale="tiny", h_values=(1, 2, 3),
                                  datasets=("caHe", "caAs"))
        rows = table2_characterization.run(config)
        assert len(rows) == 2
        for row in rows:
            max_indices = [int(row[f"h={h}"].split("/")[0]) for h in (1, 2, 3)]
            # The maximum core index grows with h (h-degrees only grow).
            assert max_indices == sorted(max_indices)

    def test_figure3_fractions_monotone_in_k(self, tiny_config):
        config = ExperimentConfig(scale="tiny", h_values=(2,), datasets=("caAs",))
        rows = figure3_core_sizes.run(config)
        for row in rows:
            series = [row[key] for key in row if str(key).startswith("k/C^=")]
            assert series == sorted(series, reverse=True)
            assert series[0] == 1.0

    def test_figure4_bins_sum_to_one(self, tiny_config):
        config = ExperimentConfig(scale="tiny", h_values=(2,), datasets=("caAs",))
        rows = figure4_core_distribution.run(config)
        for row in rows:
            bins = [row[key] for key in row if str(key).startswith("(")]
            assert sum(bins) == pytest.approx(1.0, abs=0.02)


class TestEfficiencyExperiments:
    def test_table3_lower_bound_saves_visits(self):
        config = ExperimentConfig(scale="tiny", h_values=(2,),
                                  datasets=("caHe", "rnPA"))
        rows = table3_efficiency.run(config)
        for row in rows:
            assert row["h-LB visits"] <= row["h-BZ visits"]
            assert row["h-BZ time (s)"] >= 0

    def test_table4_lb2_tighter_than_lb1_and_ub_tighter_than_hdegree(self):
        config = ExperimentConfig(scale="tiny", h_values=(2,), datasets=("caHe",))
        rows = table4_bounds.run(config)
        for row in rows:
            assert row["LB2 err"] <= row["LB1 err"] + 1e-9
            assert row["UB err"] <= row["h-degree err"] + 1e-9

    def test_table5_columns(self):
        config = ExperimentConfig(scale="tiny", h_values=(2,), datasets=("rnPA",))
        rows = table5_bound_ablation.run(config)
        expected = {"dataset", "h", "no LB (s)", "LB1 (s)", "LB2 (s)",
                    "h-degree UB (s)", "UB (s)"}
        assert expected <= set(rows[0])

    def test_figure5_sizes_and_rows(self):
        config = ExperimentConfig(scale="tiny", h_values=(2,))
        config.extra["sample_sizes"] = (20, 40)
        config.extra["samples_per_size"] = 2
        rows = figure5_scalability.run(config)
        assert len(rows) == 2
        assert all(row["mean time (s)"] >= 0 for row in rows)

    def test_figure5b_executor_rows(self):
        from repro.core.backends import numpy_available

        config = ExperimentConfig(scale="tiny", h_values=(2,))
        config.extra["executors"] = ("serial", "process")
        config.extra["worker_counts"] = (2,)
        config.extra["scaling_sample_size"] = 60
        config.extra["repeats"] = 1
        rows = figure5_scalability.run_executor_scaling(config)
        engines = ["csr", "numpy"] if numpy_available() else ["csr"]
        assert [(row["engine"], row["executor"]) for row in rows] == [
            (engine, executor)
            for engine in engines
            for executor in ("serial", "process")
        ]
        assert rows[0]["workers"] == 1 and rows[0]["speedup"] == 1.0
        assert all(row["time (s)"] >= 0 for row in rows)


class TestApplicationExperiments:
    def test_table6_sizes_consistent(self):
        config = ExperimentConfig(scale="tiny", h_values=(2,),
                                  datasets=("rnPA", "amzn"),
                                  hclub_time_budget_seconds=10.0)
        rows = table6_hclub.run(config)
        for row in rows:
            assert "max h-club size" in row
            # At this scale the solvers should all terminate.
            assert row["max h-club size"] != "NT"

    def test_table7_strategies_present(self, tiny_config):
        config = ExperimentConfig(scale="tiny", datasets=("caHe", "doub"),
                                  num_landmarks=5, num_query_pairs=20)
        rows = table7_landmarks.run(config)
        strategies = {row["strategy"] for row in rows}
        assert "closeness" in strategies
        assert "max core h=4" in strategies
        assert any(str(s).startswith("max core index") for s in strategies)

    def test_figure6_correlations_bounded(self):
        config = ExperimentConfig(scale="tiny", datasets=("caAs",))
        rows = figure6_core_scatter.run(config)
        assert len(rows) == 4
        assert all(-1.0 <= row["pearson"] <= 1.0 for row in rows)

    def test_figure7_spearman_bounded(self):
        config = ExperimentConfig(scale="tiny", datasets=("caAs",), h_values=(1, 2))
        rows = figure7_centrality.run(config)
        assert all(-1.0 <= row["spearman(closeness, core)"] <= 1.0 for row in rows)

    def test_cocktail_party_rows(self):
        config = ExperimentConfig(scale="tiny", datasets=("caHe",), h_values=(2,))
        rows = appendix_cocktail_party.run(config)
        assert all(row["community size"] >= row["|Q|"] for row in rows)


class TestRunnerAndFormatting:
    def test_every_registered_experiment_has_runner_and_title(self):
        assert len(EXPERIMENTS) == 14
        for runner, title in EXPERIMENTS.values():
            assert callable(runner)
            assert title

    def test_run_experiments_unknown_name(self, tiny_config):
        with pytest.raises(ExperimentError):
            run_experiments(["table99"], tiny_config, output=lambda line: None)

    def test_run_experiments_collects_rows(self):
        config = ExperimentConfig(scale="tiny", datasets=("coli",))
        printed = []
        results = run_experiments(["table1"], config, output=printed.append)
        assert "table1" in results
        assert printed

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == "small"
        assert args.experiments == []

    def test_format_table_alignment_and_empty(self):
        assert "(no rows)" in format_table([], title="empty")
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "c": "x"}])
        assert "a" in text and "b" in text and "c" in text

"""Tests for the synthetic dataset registry."""

import pytest

from repro.datasets import (
    DATASET_NAMES,
    available_datasets,
    dataset_spec,
    load_dataset,
    load_many,
    paper_characteristics,
)
from repro.errors import DatasetNotFoundError, ParameterError
from repro.traversal.components import largest_component


class TestRegistry:
    def test_thirteen_datasets_registered(self):
        assert len(DATASET_NAMES) == 13
        assert set(available_datasets()) == set(DATASET_NAMES)

    def test_paper_names_present(self):
        for name in ("coli", "cele", "jazz", "FBco", "caHe", "caAs", "doub",
                     "amzn", "rnPA", "rnTX", "sytb", "hyves", "lj"):
            assert name in DATASET_NAMES

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetNotFoundError):
            load_dataset("wikipedia")
        with pytest.raises(DatasetNotFoundError):
            dataset_spec("wikipedia")

    def test_unknown_scale_raises(self):
        with pytest.raises(ParameterError):
            load_dataset("coli", scale="galactic")

    def test_paper_characteristics_table(self):
        rows = paper_characteristics()
        assert len(rows) == 13
        lj_row = next(row for row in rows if row["dataset"] == "lj")
        assert lj_row["|V|"] == 4847571


class TestBuiltGraphs:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_tiny_scale_builds(self, name):
        graph = load_dataset(name, scale="tiny", seed=0)
        assert graph.num_vertices > 0
        assert graph.num_edges > 0

    def test_determinism(self):
        assert load_dataset("FBco", seed=3) == load_dataset("FBco", seed=3)

    def test_different_seeds_differ(self):
        assert load_dataset("FBco", seed=1) != load_dataset("FBco", seed=2)

    def test_scales_are_ordered(self):
        tiny = load_dataset("caAs", scale="tiny")
        small = load_dataset("caAs", scale="small")
        medium = load_dataset("caAs", scale="medium")
        assert tiny.num_vertices < small.num_vertices < medium.num_vertices

    def test_road_networks_have_high_diameter_and_low_degree(self):
        from repro.graph.stats import summarize
        summary = summarize(load_dataset("rnPA", scale="tiny"), name="rnPA")
        assert summary.max_degree <= 8
        assert summary.diameter >= 8

    def test_social_networks_are_skewed_and_mostly_connected(self):
        graph = load_dataset("sytb", scale="tiny")
        degrees = sorted(graph.degrees().values())
        assert degrees[-1] >= 5 * degrees[len(degrees) // 2]
        assert len(largest_component(graph)) == graph.num_vertices

    def test_load_many_default_and_subset(self):
        subset = load_many(["coli", "jazz"], scale="tiny")
        assert set(subset) == {"coli", "jazz"}
        everything = load_many(scale="tiny")
        assert set(everything) == set(DATASET_NAMES)

    def test_family_metadata(self):
        assert dataset_spec("rnTX").family == "road"
        assert dataset_spec("FBco").family == "social"


class TestExportEdgeList:
    def test_export_is_byte_deterministic(self, tmp_path):
        from repro.datasets import export_edge_list

        a, b = tmp_path / "a.edges", tmp_path / "b.edges"
        export_edge_list("jazz", a, scale="tiny", seed=4)
        export_edge_list("jazz", b, scale="tiny", seed=4)
        assert a.read_bytes() == b.read_bytes()
        c = tmp_path / "c.edges"
        export_edge_list("jazz", c, scale="tiny", seed=5)
        assert a.read_bytes() != c.read_bytes()

    def test_export_roundtrips_through_read_edge_list(self, tmp_path):
        from repro.datasets import export_edge_list
        from repro.graph import read_edge_list

        path = tmp_path / "coli.edges"
        generated = export_edge_list("coli", path, scale="tiny", seed=1)
        loaded = read_edge_list(path)
        assert loaded.num_vertices == generated.num_vertices
        assert loaded.num_edges == generated.num_edges
        assert (sorted(map(sorted, loaded.edges()))
                == sorted(map(sorted, generated.edges())))

    def test_export_lines_are_sorted_with_header(self, tmp_path):
        from repro.datasets import export_edge_list

        path = tmp_path / "cele.edges"
        export_edge_list("cele", path, scale="tiny")
        lines = path.read_text().splitlines()
        assert lines[0].startswith("# dataset cele scale=tiny seed=0:")
        body = lines[1:]
        assert body == sorted(body)

    def test_export_accepts_file_like_target(self, tmp_path):
        import io

        from repro.datasets import export_edge_list

        buffer = io.StringIO()
        graph = export_edge_list("jazz", buffer, scale="tiny")
        assert f"{graph.num_vertices} vertices" in buffer.getvalue()

    def test_export_unknown_dataset_raises(self, tmp_path):
        from repro.datasets import export_edge_list

        with pytest.raises(DatasetNotFoundError):
            export_edge_list("wikipedia", tmp_path / "x.edges")

"""Service-hardening tests: deadlines, backpressure, watchdog, shutdown.

The HTTP-level pieces (408/503 + ``Retry-After``, slow-read deadlines)
run against a real server on an ephemeral port; the service-level pieces
(update backpressure, the re-peel watchdog, final-epoch publication) call
:class:`~repro.serve.service.CoreService` directly.  The subprocess
SIGTERM drain test lives in ``test_serve_shutdown.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ParameterError, ServiceOverloadedError
from repro.graph import generators as gen
from repro.serve import CoreServer, CoreService


def _service(**kwargs) -> CoreService:
    return CoreService(gen.relaxed_caveman_graph(3, 6, 0.2, seed=9), h=2,
                       **kwargs)


async def _raw_exchange(port, payload: bytes, settle: float = 0.0) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(payload)
        await writer.drain()
        if settle:
            await asyncio.sleep(settle)
        return await reader.read(65536)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _status_and_headers(raw: bytes):
    head, _, _body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


class TestRequestDeadline:
    def test_slow_read_gets_408_with_retry_after(self):
        service = _service()

        async def _main():
            server = await CoreServer(service, port=0,
                                      request_deadline=0.2).start()
            try:
                # Request line arrives, headers never finish: the deadline
                # covers everything after the (idle-tolerant) first line.
                raw = await _raw_exchange(
                    server.port, b"GET /cores HTTP/1.1\r\n", settle=1.0)
                status, headers = _status_and_headers(raw)
                assert status == 408
                assert headers.get("retry-after") == "1"
            finally:
                await server.aclose()

        try:
            asyncio.run(_main())
        finally:
            service.close()

    def test_fast_request_unaffected_by_deadline(self):
        service = _service()

        async def _main():
            server = await CoreServer(service, port=0,
                                      request_deadline=5.0).start()
            try:
                raw = await _raw_exchange(
                    server.port,
                    b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                    b"Connection: close\r\n\r\n",
                    settle=0.05)
                status, headers = _status_and_headers(raw)
                assert status == 200
                assert "retry-after" not in headers
            finally:
                await server.aclose()

        try:
            asyncio.run(_main())
        finally:
            service.close()


class TestBackpressure:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            _service(max_pending=0)
        with pytest.raises(ParameterError):
            _service(repeel_budget=0.0)

    def test_excess_concurrent_batches_are_shed(self):
        service = _service(max_pending=1)

        async def _main():
            updates = [("insert", 0, 17)]
            results = await asyncio.gather(
                *(service.apply_updates(updates) for _ in range(6)),
                return_exceptions=True)
            applied = [r for r in results if isinstance(r, dict)]
            shed = [r for r in results
                    if isinstance(r, ServiceOverloadedError)]
            assert applied, "at least one batch must get through"
            assert shed, "the cap must shed the concurrent surplus"
            assert len(applied) + len(shed) == 6

        try:
            asyncio.run(_main())
            stats = service.query_stats()["resilience"]
            assert stats["shed_requests"] == service.shed_requests >= 1
            assert stats["pending_updates"] == 0
            assert stats["max_pending"] == 1
        finally:
            service.close()

    def test_shed_batch_has_no_side_effects(self):
        service = _service(max_pending=1)
        try:
            before = service.snapshot.generation
            service._pending = 1  # simulate an in-flight batch
            with pytest.raises(ServiceOverloadedError):
                asyncio.run(service.apply_updates([("insert", 0, 17)]))
            service._pending = 0
            assert service.snapshot.generation == before
        finally:
            service.close()


class TestWatchdog:
    def test_slow_incremental_repeel_trips_to_full_recompute(self):
        # fallback_ratio=1.0 keeps every batch on the incremental path;
        # a sub-measurable budget guarantees the first batch exceeds it.
        service = _service(repeel_budget=1e-9, fallback_ratio=1.0)
        try:
            first = service.apply_updates_sync([("insert", 0, 17)])
            assert first["mode"] == "incremental"
            assert service.watchdog_trips == 1
            assert service.engine.fallback_ratio == 0.0
            second = service.apply_updates_sync([("insert", 1, 16)])
            assert second["mode"] == "full"
            # Already pinned: no double-counting.
            assert service.watchdog_trips == 1
            assert service.query_stats()["resilience"]["watchdog_trips"] == 1
        finally:
            service.close()

    def test_fast_repeel_never_trips(self):
        service = _service(repeel_budget=60.0, fallback_ratio=1.0)
        try:
            summary = service.apply_updates_sync([("insert", 0, 17)])
            assert summary["mode"] == "incremental"
            assert service.watchdog_trips == 0
            assert service.engine.fallback_ratio == 1.0
        finally:
            service.close()


class TestFinalEpoch:
    def test_publish_final_bumps_generation(self):
        service = _service()
        try:
            before = service.snapshot.generation
            snapshot = service.publish_final()
            assert snapshot.generation == before + 1
            assert service.snapshot is snapshot
        finally:
            service.close()

    def test_publish_final_after_close_is_noop(self):
        service = _service()
        service.close()
        snapshot = service.publish_final()
        assert snapshot is service.snapshot


class TestDrain:
    def test_drain_reports_inflight_and_stops_keepalive(self):
        service = _service()

        async def _main():
            server = await CoreServer(service, port=0).start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            try:
                writer.write(b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                             b"Connection: keep-alive\r\n\r\n")
                await writer.drain()
                await reader.readline()  # response under way
                drained = await server.drain(grace=1.0)
                assert drained >= 1
                # The listener is gone: new connections are refused.
                with pytest.raises(OSError):
                    await asyncio.open_connection("127.0.0.1", server.port)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
                await server.aclose()

        try:
            asyncio.run(_main())
        finally:
            service.close()

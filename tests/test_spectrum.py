"""Tests for the multi-h core spectrum (§7 future-work feature)."""

import pytest

from repro.core import core_decomposition, core_spectrum
from repro.core.spectrum import VertexSpectrum
from repro.errors import InvalidDistanceThresholdError, ParameterError
from repro.graph import Graph
from repro.graph.generators import erdos_renyi_graph, relaxed_caveman_graph, star_graph


@pytest.fixture(scope="module")
def spectrum_and_graph():
    graph = relaxed_caveman_graph(4, 5, 0.15, seed=2)
    return core_spectrum(graph, (1, 2, 3)), graph


class TestCoreSpectrum:
    def test_matches_individual_decompositions(self, spectrum_and_graph):
        spectrum, graph = spectrum_and_graph
        for h in (1, 2, 3):
            expected = core_decomposition(graph, h).core_index
            assert spectrum.decompositions[h].core_index == expected

    def test_vectors_monotone_in_h(self, spectrum_and_graph):
        spectrum, graph = spectrum_and_graph
        for v in graph.vertices():
            vector = spectrum.vector(v)
            assert list(vector) == sorted(vector)

    def test_normalized_vectors_in_unit_interval(self, spectrum_and_graph):
        spectrum, graph = spectrum_and_graph
        for vector in spectrum.all_vectors(normalized=True).values():
            assert all(0.0 <= value <= 1.0 for value in vector)

    def test_getitem_and_repr(self, spectrum_and_graph):
        spectrum, graph = spectrum_and_graph
        vertex = next(iter(graph.vertices()))
        assert spectrum[vertex] == spectrum.vector(vertex)
        assert "h_values" in repr(spectrum)

    def test_most_similar_excludes_self_and_ranks(self, spectrum_and_graph):
        spectrum, graph = spectrum_and_graph
        vertex = next(iter(graph.vertices()))
        similar = spectrum.most_similar(vertex, top=3)
        assert len(similar) == 3
        assert all(other != vertex for other, _ in similar)
        distances = [distance for _, distance in similar]
        assert distances == sorted(distances)

    def test_most_similar_invalid_top(self, spectrum_and_graph):
        spectrum, _ = spectrum_and_graph
        with pytest.raises(ParameterError):
            spectrum.most_similar(next(iter(spectrum.graph.vertices())), top=0)

    def test_default_h_values(self):
        graph = star_graph(4)
        spectrum = core_spectrum(graph)
        assert spectrum.h_values == (1, 2, 3, 4)

    def test_seeding_matches_unseeded_on_random_graphs(self):
        for seed in range(3):
            graph = erdos_renyi_graph(18, 0.18, seed=seed)
            spectrum = core_spectrum(graph, (2, 3, 4))
            for h in (2, 3, 4):
                expected = core_decomposition(graph, h, algorithm="naive").core_index
                assert spectrum.decompositions[h].core_index == expected

    def test_invalid_parameters(self):
        graph = star_graph(3)
        with pytest.raises(ParameterError):
            core_spectrum(graph, ())
        with pytest.raises(InvalidDistanceThresholdError):
            core_spectrum(graph, (0, 2))

    def test_empty_graph(self):
        spectrum = core_spectrum(Graph(), (1, 2))
        assert spectrum.all_vectors() == {}

    def test_vertex_spectrum_direct_construction(self):
        graph = star_graph(3)
        decompositions = {h: core_decomposition(graph, h) for h in (1, 2)}
        spectrum = VertexSpectrum(graph, (1, 2), decompositions)
        assert spectrum.vector(0) == (1, 3)

"""Parity and lifecycle tests for the vectorized NumPy engine.

The numpy engine is not "approximately the CSR engine but faster": it drives
the *same* peel kernels through a structurally-twin scratch, so core
numbers, h-degrees, removal orders and instrumentation totals must be
bit-identical to the interpreted engines.  The battery asserts exactly
that — across every generator family, for h in {1, 2, 3}, with and without
the cache-locality relabeling, through both bulk kernels (stamped frontier
and bit-parallel dense), over every executor, and through the shared-memory
process path's zero-copy ``np.frombuffer`` views.

Everything here skips cleanly when NumPy is absent except the fallback
battery at the bottom, which asserts the *degraded* behavior: ``auto``
never selects numpy, an explicit request fails with a clear error, and the
worker-side kernel downgrade is silent.
"""

from __future__ import annotations

import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compute_h_degrees, h_bz, h_lb, h_lb_ub
from repro.core.backends import (
    CSREngine,
    DictEngine,
    NumpyEngine,
    numpy_available,
    resolve_engine,
    resolved_backend_name,
)
from repro.errors import ParameterError
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph, relabel_order
from repro.instrumentation import Counters
from repro.runtime import ExecutionContext
from repro.traversal.array_bfs import DEAD, AliveMask, ArrayBFS

from test_peel_state import FAMILIES

requires_numpy = pytest.mark.skipif(not numpy_available(),
                                    reason="NumPy not installed")

RELABELS = [None, "degree", "bfs"]


def _label_degrees(engine, h, **kwargs):
    return engine.to_labels(engine.bulk_h_degrees(h, **kwargs))


# --------------------------------------------------------------------- #
# bulk h-degree parity
# --------------------------------------------------------------------- #
@requires_numpy
class TestBulkParity:
    @pytest.mark.parametrize("h", [1, 2, 3])
    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    @pytest.mark.parametrize("relabel", RELABELS,
                             ids=["plain", "degree", "bfs"])
    def test_bulk_h_degrees_all_families(self, family, h, relabel):
        """numpy == csr == dict h-degrees, and numpy/csr counter totals."""
        graph = FAMILIES[family]()
        reference = _label_degrees(DictEngine(graph), h)
        csr_counters, numpy_counters = Counters(), Counters()
        csr = CSREngine(graph, relabel=relabel)
        vec = NumpyEngine(graph, relabel=relabel)
        assert _label_degrees(csr, h, counters=csr_counters) == reference
        assert _label_degrees(vec, h, counters=numpy_counters) == reference
        assert numpy_counters.as_dict() == csr_counters.as_dict()

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_bulk_executors_match(self, executor):
        graph = gen.erdos_renyi_graph(60, 0.1, seed=5)
        expected = _label_degrees(CSREngine(graph), 2)
        vec = NumpyEngine(graph)
        assert _label_degrees(vec, 2, executor=executor,
                              num_workers=3) == expected

    def test_bulk_process_executor_matches(self):
        graph = gen.erdos_renyi_graph(48, 0.12, seed=6)
        expected = _label_degrees(CSREngine(graph), 2)
        vec = NumpyEngine(graph)
        try:
            assert _label_degrees(vec, 2, executor="process",
                                  num_workers=2) == expected
        finally:
            vec.close()

    def test_bulk_respects_alive_subset(self):
        graph = gen.relaxed_caveman_graph(4, 5, 0.2, seed=2)
        csr = CSREngine(graph)
        vec = NumpyEngine(graph)
        half = [i for i in csr.nodes() if i % 2 == 0]
        for engine in (csr, vec):
            alive = engine.alive_subset(half)
            got = engine.bulk_h_degrees(2, targets=half, alive=alive)
            if engine is csr:
                expected = got
        assert got == expected

    def test_compute_h_degrees_facade(self):
        graph = gen.watts_strogatz_graph(30, 4, 0.2, seed=4)
        assert (compute_h_degrees(graph, 2, backend="numpy")
                == compute_h_degrees(graph, 2, backend="dict"))


# --------------------------------------------------------------------- #
# whole-algorithm parity (shared peel kernels on top of the scratch)
# --------------------------------------------------------------------- #
@requires_numpy
class TestAlgorithmParity:
    @pytest.mark.parametrize("h", [1, 2, 3])
    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    def test_identical_runs_all_families(self, family, h):
        """Same cores, same removal order, same counters as the CSR engine."""
        graph = FAMILIES[family]()
        runs = {}
        for backend in ("csr", "numpy"):
            counters = Counters()
            with ExecutionContext(graph, backend=backend,
                                  counters=counters) as context:
                result = h_lb(graph, h, context=context)
            runs[backend] = (result.core_index, result.removal_order,
                             counters.as_dict())
        assert runs["numpy"][0] == runs["csr"][0], "core numbers diverged"
        assert runs["numpy"][1] == runs["csr"][1], "removal orders diverged"
        assert runs["numpy"][2] == runs["csr"][2], "counter totals diverged"

    @pytest.mark.parametrize("algorithm", [h_bz, h_lb, h_lb_ub],
                             ids=["h-BZ", "h-LB", "h-LB+UB"])
    @pytest.mark.parametrize("relabel", RELABELS,
                             ids=["plain", "degree", "bfs"])
    def test_relabeled_runs_agree(self, algorithm, relabel):
        """Relabeling changes indices, never label-space results."""
        graph = gen.powerlaw_cluster_graph(24, 2, 0.4, seed=9)
        reference = algorithm(graph, 2, backend="dict").core_index
        runs = {}
        for backend in ("csr", "numpy"):
            counters = Counters()
            with ExecutionContext(graph, backend=backend, relabel=relabel,
                                  counters=counters) as context:
                result = algorithm(graph, 2, context=context)
            assert result.core_index == reference, (backend, relabel)
            runs[backend] = (result.removal_order, counters.as_dict())
        # Under the *same* relabeling the two engines share one handle
        # space, so even the removal orders and counters coincide.
        assert runs["numpy"] == runs["csr"]

    @settings(max_examples=25, deadline=None)
    @given(
        num_vertices=st.integers(min_value=2, max_value=18),
        edge_probability=st.floats(min_value=0.05, max_value=0.6),
        seed=st.integers(min_value=0, max_value=10_000),
        h=st.integers(min_value=1, max_value=3),
        backend=st.sampled_from(["dict", "csr", "numpy", "auto"]),
        executor=st.sampled_from(["serial", "thread"]),
        workers=st.integers(min_value=1, max_value=3),
        relabel=st.sampled_from(RELABELS),
    )
    def test_hypothesis_engine_executor_sweep(self, num_vertices,
                                              edge_probability, seed, h,
                                              backend, executor, workers,
                                              relabel):
        """Random graphs through the context: every mix equals the reference."""
        graph = gen.erdos_renyi_graph(num_vertices, edge_probability,
                                      seed=seed)
        reference = h_lb(graph, h, backend="dict").core_index
        with ExecutionContext(graph, backend=backend, executor=executor,
                              num_workers=workers,
                              relabel=relabel) as context:
            for algorithm in (h_lb, h_lb_ub, h_bz):
                assert algorithm(graph, h,
                                 context=context).core_index == reference


# --------------------------------------------------------------------- #
# scratch-level parity (single-source runs, both bulk kernels)
# --------------------------------------------------------------------- #
@requires_numpy
class TestScratchParity:
    def scratches(self, graph):
        from repro.traversal.numpy_bfs import NumpyBFS

        csr = CSRGraph.from_graph(graph)
        return csr, ArrayBFS(csr), NumpyBFS(csr)

    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    def test_single_source_identical_orders(self, family):
        """Visit order, level segmentation, distances: all identical."""
        graph = FAMILIES[family]()
        csr, interpreted, vectorized = self.scratches(graph)
        for source in range(csr.num_vertices):
            for h in (1, 2, None):
                a = interpreted.run(source, h)
                b = vectorized.run(source, h)
                assert a == b
                assert interpreted.order == vectorized.order
                assert interpreted.level_ends == vectorized.level_ends
                assert (interpreted.visited_with_distance()
                        == vectorized.visited_with_distance())

    def test_alive_mask_and_discard_sync(self):
        """Shared AliveMask protocol: installs and discards stay in sync."""
        graph = gen.relaxed_caveman_graph(3, 5, 0.2, seed=1)
        csr, interpreted, vectorized = self.scratches(graph)
        a_mask = AliveMask.full(csr.num_vertices)
        b_mask = AliveMask.full(csr.num_vertices)
        order = list(range(csr.num_vertices))
        for victim in order[::2]:
            assert (interpreted.run(victim, 2, a_mask)
                    == vectorized.run(victim, 2, b_mask))
            assert interpreted.order == vectorized.order
            # Discard after the run: the next runs must skip the victim via
            # the DEAD sentinel both scratches share.
            a_mask.discard(victim)
            b_mask.discard(victim)
        survivors = [v for v in order if v not in set(order[::2])]
        for source in survivors:
            assert (interpreted.run(source, 3, a_mask)
                    == vectorized.run(source, 3, b_mask))
            assert interpreted.order == vectorized.order

    def test_generation_rollover_is_sound(self):
        """Forcing the generation to the sentinel resets instead of corrupting."""
        graph = gen.cycle_graph(8)
        _, interpreted, vectorized = self.scratches(graph)
        expected = vectorized.run(0, 2)
        vectorized._generation = DEAD - 1
        assert vectorized.run(0, 2) == expected
        assert vectorized._generation == 1  # restarted after the reinstall
        interpreted._generation = DEAD - 1
        assert interpreted.run(0, 2) == expected
        assert interpreted._generation == 1

    def test_block_and_dense_kernels_agree(self):
        """Both bulk kernels and the per-source loop: one answer."""
        import numpy as np

        for builder in (lambda: gen.star_graph(40),
                        lambda: gen.erdos_renyi_graph(50, 0.15, seed=8),
                        lambda: gen.grid_graph(6, 6)):
            graph = builder()
            csr, interpreted, vectorized = self.scratches(graph)
            sources = np.arange(csr.num_vertices, dtype=np.int64)
            for h in (1, 2, 3):
                per_source = [interpreted.run(v, h)
                              for v in range(csr.num_vertices)]
                dense = vectorized._run_dense(sources, h)
                block = vectorized.bulk(sources.tolist(), h)
                assert dense.tolist() == per_source
                assert block.tolist() == per_source

    def test_dense_selection_is_forced_through_bulk(self, monkeypatch):
        """bulk() with the probe forced each way returns the same degrees."""
        from repro.traversal import numpy_bfs

        graph = gen.star_graph(30)
        _, interpreted, vectorized = self.scratches(graph)
        expected = [interpreted.run(v, 2) for v in range(31)]
        for choice in (True, False):
            monkeypatch.setattr(numpy_bfs.NumpyBFS, "_dense_preferred",
                                lambda self, src, h, _c=choice: _c)
            assert vectorized.bulk(range(31), 2).tolist() == expected

    def test_counters_batch_totals(self):
        graph = gen.erdos_renyi_graph(40, 0.12, seed=3)
        csr, interpreted, vectorized = self.scratches(graph)
        loop_counters, bulk_counters = Counters(), Counters()
        for v in range(csr.num_vertices):
            interpreted.run(v, 2, counters=loop_counters)
        vectorized.bulk(range(csr.num_vertices), 2, counters=bulk_counters)
        assert bulk_counters.bfs_calls == loop_counters.bfs_calls
        assert (bulk_counters.vertices_visited
                == loop_counters.vertices_visited)


# --------------------------------------------------------------------- #
# shared-memory path
# --------------------------------------------------------------------- #
@requires_numpy
class TestSharedMemoryViews:
    def test_numpy_views_roundtrip_and_close(self):
        import numpy as np

        from repro.parallel import SharedCSRExport, SharedCSRView

        graph = gen.erdos_renyi_graph(30, 0.2, seed=1)
        csr = CSRGraph.from_graph(graph)
        export = SharedCSRExport(csr, generation=1)
        try:
            view = SharedCSRView(export.layout())
            indptr, adjacency, alive = view.numpy_views()
            assert indptr.tolist() == list(csr.indptr)
            assert adjacency.tolist() == list(csr.adjacency)
            assert alive.shape == (csr.num_vertices,)
            assert indptr.dtype == np.int64
            # Cached: repeated calls hand back the same zero-copy views.
            assert view.numpy_views()[0] is indptr
            # The caller must drop its ndarray references before close —
            # they pin the shared block (same contract the worker's
            # _detach honors by dropping the scratch first).
            del indptr, adjacency, alive
            view.close()
            view.close()  # idempotent
        finally:
            export.close()

    def test_run_chunk_numpy_kind_matches_csr_kind(self):
        from repro.parallel import SharedCSRExport
        from repro.parallel.worker import run_chunk

        graph = gen.relaxed_caveman_graph(4, 5, 0.2, seed=4)
        csr = CSRGraph.from_graph(graph)
        export = SharedCSRExport(csr, generation=1)
        try:
            chunk = list(range(csr.num_vertices))
            csr_pairs, csr_counters = run_chunk(export.layout(), chunk, 2,
                                                False, 0, "csr")
            np_pairs, np_counters = run_chunk(export.layout(), chunk, 2,
                                              False, 0, "numpy")
            assert dict(np_pairs) == dict(csr_pairs)
            assert np_counters.as_dict() == csr_counters.as_dict()
        finally:
            from repro.parallel.worker import _detach

            _detach()
            export.close()

    def test_run_chunk_falls_back_without_numpy(self, monkeypatch):
        """engine_kind='numpy' downgrades silently when the import fails."""
        from repro.parallel import SharedCSRExport
        from repro.parallel import worker as worker_module

        graph = gen.cycle_graph(12)
        csr = CSRGraph.from_graph(graph)
        export = SharedCSRExport(csr, generation=1)
        monkeypatch.setitem(sys.modules, "repro.traversal.numpy_bfs", None)
        try:
            pairs, _ = worker_module.run_chunk(export.layout(),
                                               list(range(12)), 2, False, 0,
                                               "numpy")
            assert worker_module._STATE["kind"] == "csr"
            assert dict(pairs) == {v: 4 for v in range(12)}
            # The downgrade is cached under the *requested* kind: the next
            # numpy-kind task must reuse the attachment instead of
            # re-attaching (and re-failing the import) per chunk.
            view = worker_module._STATE["view"]
            worker_module.run_chunk(export.layout(), [0, 1], 2, False, 0,
                                    "numpy")
            assert worker_module._STATE["view"] is view
        finally:
            worker_module._detach()
            export.close()


# --------------------------------------------------------------------- #
# engine resolution, refresh, relabeling plumbing
# --------------------------------------------------------------------- #
@requires_numpy
class TestEngineResolution:
    def test_explicit_numpy_engine(self):
        graph = gen.cycle_graph(6)
        engine = resolve_engine(graph, "numpy")
        assert isinstance(engine, NumpyEngine)
        assert engine.name == "numpy"

    def test_auto_prefers_numpy_above_threshold(self, monkeypatch):
        graph = gen.cycle_graph(40)
        monkeypatch.setenv("KH_CORE_NUMPY_THRESHOLD", "0")
        assert resolved_backend_name(graph, "auto") == "numpy"
        assert isinstance(resolve_engine(graph, "auto"), NumpyEngine)
        monkeypatch.setenv("KH_CORE_NUMPY_THRESHOLD", "100")
        assert resolved_backend_name(graph, "auto") == "csr"
        engine = resolve_engine(graph, "auto")
        assert isinstance(engine, CSREngine)
        assert not isinstance(engine, NumpyEngine)

    def test_refresh_rebuilds_vectorized_scratch(self):
        from repro.traversal.numpy_bfs import NumpyBFS

        graph = gen.cycle_graph(10)
        engine = NumpyEngine(graph)
        assert isinstance(engine.scratch, NumpyBFS)
        before = _label_degrees(engine, 2)
        graph.add_edge(0, 5)
        engine.refresh({0, 5})
        assert isinstance(engine.scratch, NumpyBFS)
        after = _label_degrees(engine, 2)
        assert after == _label_degrees(DictEngine(graph), 2)
        assert after != before

    def test_relabel_through_context(self):
        graph = gen.barabasi_albert_graph(30, 2, seed=2)
        with ExecutionContext(graph, backend="numpy",
                              relabel="degree") as context:
            assert context.engine.csr.labels == relabel_order(graph,
                                                              "degree")

    def test_relabel_rejected_with_supplied_snapshot(self):
        graph = gen.cycle_graph(6)
        snapshot = CSRGraph.from_graph(graph)
        with pytest.raises(ParameterError):
            CSREngine(graph, csr=snapshot, relabel="degree")

    def test_relabel_rejected_with_supplied_engine(self):
        # Silently ignoring the request would leave the caller believing
        # the permutation is active; mirror the supplied-snapshot error.
        graph = gen.cycle_graph(6)
        engine = CSREngine(graph)
        with pytest.raises(ParameterError, match="vertex order is fixed"):
            resolve_engine(graph, engine, relabel="bfs")
        with pytest.raises(ParameterError):
            ExecutionContext(graph, backend=engine, relabel="bfs")

    def test_relabel_survives_full_rebuild_refresh(self):
        """A refresh that falls back to a full rebuild re-applies relabel."""
        graph = gen.barabasi_albert_graph(24, 2, seed=5)
        engine = NumpyEngine(graph, relabel="degree")
        assert engine.csr.labels == relabel_order(graph, "degree")
        # Removing a vertex makes index stability impossible, forcing the
        # delta rebuild onto its full from_graph fallback.
        victim = engine.csr.labels[-1]
        graph.remove_vertex(victim)
        engine.refresh(None)
        assert engine.csr.labels == relabel_order(graph, "degree")
        assert (_label_degrees(engine, 2)
                == _label_degrees(DictEngine(graph), 2))

    def test_unknown_relabel_rejected(self):
        with pytest.raises(ParameterError):
            NumpyEngine(gen.cycle_graph(6), relabel="sorted")

    def test_dynamic_engine_on_numpy_backend(self):
        from repro.dynamic import DynamicKHCore

        graph = gen.cycle_graph(8)
        engine = DynamicKHCore(graph, h=2, backend="numpy", relabel="bfs")
        try:
            assert engine.backend == "numpy"
            engine.insert_edge(0, 4)
            expected = h_lb(engine.graph, 2, backend="dict").core_index
            assert engine.core_numbers() == expected
        finally:
            engine.close()


# --------------------------------------------------------------------- #
# the degraded story: NumPy absent
# --------------------------------------------------------------------- #
class TestWithoutNumpy:
    def test_auto_never_selects_numpy(self, monkeypatch):
        from repro.core import backends

        monkeypatch.setattr(backends, "numpy_available", lambda: False)
        monkeypatch.setenv("KH_CORE_NUMPY_THRESHOLD", "0")
        graph = gen.cycle_graph(40)
        assert resolved_backend_name(graph, "auto") == "csr"
        engine = resolve_engine(graph, "auto")
        assert isinstance(engine, CSREngine)
        assert not isinstance(engine, NumpyEngine)

    def test_explicit_request_raises_clear_error(self, monkeypatch):
        from repro.core import backends

        # Simulate a genuinely missing install (not the kill switch): the
        # error must point at the optional dependency.
        monkeypatch.delenv("KH_CORE_DISABLE_NUMPY", raising=False)
        monkeypatch.setattr(backends, "numpy_available", lambda: False)
        with pytest.raises(ParameterError, match="optional NumPy"):
            resolve_engine(gen.cycle_graph(6), "numpy")

    def test_numpy_available_reflects_import_state(self, monkeypatch):
        monkeypatch.delenv("KH_CORE_DISABLE_NUMPY", raising=False)
        try:
            import numpy  # noqa: F401

            assert numpy_available()
        except ImportError:
            assert not numpy_available()

    def test_disable_env_var_is_a_kill_switch(self, monkeypatch):
        monkeypatch.setenv("KH_CORE_DISABLE_NUMPY", "1")
        assert not numpy_available()
        # The error names the kill switch, not a missing dependency —
        # "pip install" advice would be wrong when NumPy is installed.
        with pytest.raises(ParameterError, match="KH_CORE_DISABLE_NUMPY"):
            resolve_engine(gen.cycle_graph(6), "numpy")
        monkeypatch.setenv("KH_CORE_DISABLE_NUMPY", "0")
        # "0" and empty mean enabled (subject to the actual install).
        import importlib.util

        assert numpy_available() == (importlib.util.find_spec("numpy")
                                     is not None)

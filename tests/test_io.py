"""Unit tests for graph I/O (edge lists and adjacency lists)."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    Graph,
    read_adjacency_list,
    read_edge_list,
    write_adjacency_list,
    write_edge_list,
)
from repro.graph.io import edges_from_pairs


class TestEdgeList:
    def test_round_trip_via_file(self, tmp_path):
        g = Graph([(1, 2), (2, 3), (3, 1)])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded == g

    def test_round_trip_via_stream(self):
        g = Graph([(0, 1), (1, 2)])
        buffer = io.StringIO()
        write_edge_list(g, buffer)
        buffer.seek(0)
        assert read_edge_list(buffer) == g

    def test_comments_and_blank_lines_skipped(self):
        text = "# a comment\n% another\n\n1 2\n2 3\n"
        assert read_edge_list(io.StringIO(text)).num_edges == 2

    def test_self_loops_dropped_but_vertex_kept(self):
        graph = read_edge_list(io.StringIO("1 1\n1 2\n"))
        assert graph.num_edges == 1
        assert graph.has_vertex(1)

    def test_string_vertices_preserved(self):
        graph = read_edge_list(io.StringIO("alice bob\n"))
        assert graph.has_edge("alice", "bob")

    def test_integer_vertices_parsed(self):
        graph = read_edge_list(io.StringIO("10 20\n"))
        assert graph.has_edge(10, 20)

    def test_single_token_line_is_isolated_vertex(self):
        graph = read_edge_list(io.StringIO("1 2\n7\n"))
        assert graph.has_vertex(7)
        assert graph.degree(7) == 0

    def test_extra_columns_ignored(self):
        graph = read_edge_list(io.StringIO("1 2 0.5 extra\n"))
        assert graph.has_edge(1, 2)

    def test_isolated_vertices_round_trip(self, tmp_path):
        g = Graph([(1, 2)])
        g.add_vertex(7)
        path = tmp_path / "iso.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.has_vertex(7)
        assert loaded.degree(7) == 0

    def test_header_optional(self):
        g = Graph([(1, 2)])
        buffer = io.StringIO()
        write_edge_list(g, buffer, header=False)
        assert not buffer.getvalue().startswith("#")


class TestAdjacencyList:
    def test_round_trip(self, tmp_path):
        g = Graph([(1, 2), (2, 3), (3, 1), (3, 4)])
        path = tmp_path / "adj.txt"
        write_adjacency_list(g, path)
        assert read_adjacency_list(path) == g

    def test_malformed_line_raises(self):
        with pytest.raises(GraphFormatError):
            read_adjacency_list(io.StringIO("1 2 3\n"))

    def test_vertex_with_no_neighbors(self):
        graph = read_adjacency_list(io.StringIO("1: 2\n3:\n"))
        assert graph.has_vertex(3)
        assert graph.degree(3) == 0


class TestEdgesFromPairs:
    def test_builds_graph(self):
        graph = edges_from_pairs([(1, 2), (2, 3)])
        assert graph.num_edges == 2

    def test_self_loop_keeps_vertex(self):
        graph = edges_from_pairs([(5, 5)])
        assert graph.has_vertex(5)
        assert graph.num_edges == 0

"""Unit tests for the synthetic graph generators."""

import pytest

from repro.errors import ParameterError
from repro.graph.generators import (
    barabasi_albert_graph,
    caveman_graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    empty_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    planted_partition_graph,
    powerlaw_cluster_graph,
    random_tree,
    relaxed_caveman_graph,
    road_network_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.traversal.components import is_connected


class TestDeterministicGraphs:
    def test_empty_graph(self):
        g = empty_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0

    def test_empty_graph_negative_raises(self):
        with pytest.raises(ParameterError):
            empty_graph(-1)

    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.vertices())

    def test_cycle_graph(self):
        g = cycle_graph(7)
        assert g.num_edges == 7
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small_raises(self):
        with pytest.raises(ParameterError):
            cycle_graph(2)

    def test_path_graph(self):
        g = path_graph(5)
        assert g.num_edges == 4
        degrees = sorted(g.degrees().values())
        assert degrees == [1, 1, 2, 2, 2]

    def test_star_graph(self):
        g = star_graph(4)
        assert g.num_vertices == 5
        assert g.degree(0) == 4

    def test_grid_graph(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical edges

    def test_grid_invalid_raises(self):
        with pytest.raises(ParameterError):
            grid_graph(0, 4)

    def test_caveman_graph(self):
        g = caveman_graph(3, 4)
        assert g.num_vertices == 12
        assert is_connected(g)

    def test_caveman_invalid_raises(self):
        with pytest.raises(ParameterError):
            caveman_graph(1, 1)


class TestRandomModels:
    def test_erdos_renyi_determinism(self):
        a = erdos_renyi_graph(30, 0.2, seed=11)
        b = erdos_renyi_graph(30, 0.2, seed=11)
        assert a == b

    def test_erdos_renyi_different_seeds_differ(self):
        a = erdos_renyi_graph(30, 0.2, seed=1)
        b = erdos_renyi_graph(30, 0.2, seed=2)
        assert a != b

    def test_erdos_renyi_extreme_probabilities(self):
        assert erdos_renyi_graph(10, 0.0, seed=0).num_edges == 0
        assert erdos_renyi_graph(10, 1.0, seed=0).num_edges == 45

    def test_erdos_renyi_invalid_probability(self):
        with pytest.raises(ParameterError):
            erdos_renyi_graph(10, 1.5)

    def test_barabasi_albert_sizes(self):
        g = barabasi_albert_graph(50, 3, seed=4)
        assert g.num_vertices == 50
        # Every vertex added after the seed star brings at most m new edges.
        assert g.num_edges <= 3 + (50 - 4) * 3
        assert is_connected(g)

    def test_barabasi_albert_invalid_m(self):
        with pytest.raises(ParameterError):
            barabasi_albert_graph(5, 5)

    def test_watts_strogatz(self):
        g = watts_strogatz_graph(20, 4, 0.1, seed=2)
        assert g.num_vertices == 20
        # Rewiring keeps the edge count of the ring lattice.
        assert g.num_edges == 20 * 2

    def test_watts_strogatz_invalid_k(self):
        with pytest.raises(ParameterError):
            watts_strogatz_graph(10, 3, 0.1)

    def test_powerlaw_cluster(self):
        g = powerlaw_cluster_graph(60, 2, 0.4, seed=9)
        assert g.num_vertices == 60
        assert is_connected(g)

    def test_powerlaw_cluster_invalid(self):
        with pytest.raises(ParameterError):
            powerlaw_cluster_graph(10, 0, 0.4)

    def test_relaxed_caveman_determinism(self):
        a = relaxed_caveman_graph(4, 5, 0.2, seed=3)
        b = relaxed_caveman_graph(4, 5, 0.2, seed=3)
        assert a == b

    def test_planted_partition(self):
        g = planted_partition_graph(4, 5, 0.9, 0.01, seed=5)
        assert g.num_vertices == 20

    def test_planted_partition_invalid(self):
        with pytest.raises(ParameterError):
            planted_partition_graph(2, 3, 1.2, 0.1)

    def test_random_tree(self):
        g = random_tree(25, seed=6)
        assert g.num_vertices == 25
        assert g.num_edges == 24
        assert is_connected(g)

    def test_random_tree_single_vertex(self):
        g = random_tree(1, seed=0)
        assert g.num_vertices == 1
        assert g.num_edges == 0

    def test_road_network(self):
        g = road_network_graph(8, 8, seed=1)
        assert g.num_vertices == 64
        # Road networks stay sparse: average degree stays below 4.
        assert 2 * g.num_edges / g.num_vertices < 4.5

    def test_road_network_no_isolated_vertices(self):
        g = road_network_graph(6, 6, removal_p=0.3, seed=2)
        assert all(g.degree(v) >= 1 for v in g.vertices())


class TestDisjointUnion:
    def test_union_sizes_and_mappings(self):
        g1 = complete_graph(3)
        g2 = path_graph(4)
        union, mappings = disjoint_union([g1, g2])
        assert union.num_vertices == 7
        assert union.num_edges == 3 + 3
        assert len(mappings) == 2
        assert set(mappings[1].values()) == {3, 4, 5, 6}

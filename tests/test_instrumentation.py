"""Tests for the instrumentation (counters, timers, reports)."""

import time

from repro.instrumentation import Counters, NULL_COUNTERS, RunReport, Timer, timed


class TestCounters:
    def test_record_and_snapshot(self):
        counters = Counters()
        counters.record_hdegree(12)
        counters.record_bfs(5)
        counters.record_decrement()
        counters.record_bucket_move()
        counters.count_hdegree()
        counters.bump("partitions", 3)
        snapshot = counters.as_dict()
        assert snapshot["vertices_visited"] == 17
        assert snapshot["hdegree_computations"] == 2
        assert snapshot["hdegree_decrements"] == 1
        assert snapshot["bucket_moves"] == 1
        assert snapshot["bfs_calls"] == 2
        assert snapshot["partitions"] == 3

    def test_merge(self):
        a, b = Counters(), Counters()
        a.record_bfs(3)
        b.record_bfs(4)
        b.bump("x")
        a.merge(b)
        assert a.vertices_visited == 7
        assert a.extra["x"] == 1

    def test_reset(self):
        counters = Counters()
        counters.record_bfs(10)
        counters.bump("y")
        counters.reset()
        assert counters.vertices_visited == 0
        assert counters.extra == {}

    def test_null_counters_ignore_everything(self):
        NULL_COUNTERS.record_bfs(100)
        NULL_COUNTERS.record_hdegree(100)
        NULL_COUNTERS.count_hdegree()
        NULL_COUNTERS.record_decrement()
        NULL_COUNTERS.record_bucket_move()
        NULL_COUNTERS.bump("ignored")
        assert NULL_COUNTERS.vertices_visited == 0
        assert NULL_COUNTERS.extra == {}


class TestTimer:
    def test_context_manager(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_accumulates_across_intervals(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            pass
        assert timer.elapsed >= first

    def test_stop_without_start_raises(self):
        try:
            Timer().stop()
        except RuntimeError:
            return
        raise AssertionError("expected RuntimeError")

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0

    def test_timed_callback(self):
        durations = []
        with timed(durations.append):
            pass
        assert len(durations) == 1
        assert durations[0] >= 0.0


class TestRunReport:
    def test_visits_property_and_row(self):
        counters = Counters()
        counters.record_bfs(42)
        report = RunReport(algorithm="h-LB", dataset="toy", h=2,
                           seconds=1.5, counters=counters,
                           params={"partition_size": 1})
        assert report.visits == 42
        row = report.as_row()
        assert row["algorithm"] == "h-LB"
        assert row["visits"] == 42
        assert row["param_partition_size"] == 1
        assert "h-LB" in str(report)

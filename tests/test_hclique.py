"""Tests for h-cliques (Definition 4) and the maximum h-clique search."""

import itertools

import pytest

from repro.applications.hclique import greedy_h_clique, is_h_clique, maximum_h_clique
from repro.errors import InvalidDistanceThresholdError
from repro.graph import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)
from repro.traversal.distances import all_pairs_distances


def brute_force_max_h_clique(graph, h):
    """Oracle: largest subset pairwise within distance h in the full graph."""
    distances = all_pairs_distances(graph)
    vertices = sorted(graph.vertices(), key=repr)
    best = set()
    for size in range(len(vertices), 0, -1):
        if size <= len(best):
            break
        for subset in itertools.combinations(vertices, size):
            ok = all(
                v in distances[u] and distances[u][v] <= h
                for u, v in itertools.combinations(subset, 2)
            )
            if ok:
                return set(subset)
    return best


class TestIsHClique:
    def test_star_leaves_form_2_clique(self):
        g = star_graph(5)
        assert is_h_clique(g, set(range(1, 6)), 2)
        assert not is_h_clique(g, set(range(1, 6)), 1)

    def test_clique_may_use_outside_vertices(self):
        # 1 and 3 are within distance 2 only through 2, which is outside the set.
        g = path_graph(5)
        assert is_h_clique(g, {1, 3}, 2)

    def test_missing_vertex(self):
        assert not is_h_clique(path_graph(3), {0, 99}, 2)

    def test_empty_and_singleton(self):
        g = path_graph(3)
        assert is_h_clique(g, set(), 2)
        assert is_h_clique(g, {1}, 2)

    def test_invalid_h(self):
        with pytest.raises(InvalidDistanceThresholdError):
            is_h_clique(path_graph(3), {0, 1}, 0)


class TestGreedyHClique:
    def test_returns_valid_clique(self):
        g = erdos_renyi_graph(18, 0.2, seed=1)
        clique = greedy_h_clique(g, 2)
        assert is_h_clique(g, clique, 2)
        assert clique

    def test_empty_graph(self):
        assert greedy_h_clique(Graph(), 2) == set()

    def test_seed_vertex_respected(self):
        g = path_graph(6)
        clique = greedy_h_clique(g, 2, seed_vertex=0)
        assert 0 in clique


class TestMaximumHClique:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("h", [2, 3])
    def test_matches_brute_force(self, seed, h):
        g = erdos_renyi_graph(11, 0.25, seed=seed)
        expected = len(brute_force_max_h_clique(g, h))
        found = maximum_h_clique(g, h)
        assert is_h_clique(g, found, h)
        assert len(found) == expected

    def test_complete_graph(self):
        g = complete_graph(6)
        assert len(maximum_h_clique(g, 2)) == 6

    def test_cycle_h2(self):
        assert len(maximum_h_clique(cycle_graph(8), 2)) == 3

    def test_empty_graph(self):
        assert maximum_h_clique(Graph(), 2) == set()

    def test_candidate_restriction(self):
        g = star_graph(5)
        found = maximum_h_clique(g, 2, candidate_vertices={1, 2, 3})
        assert found <= {1, 2, 3}
        assert len(found) == 3

"""Tests for the exception hierarchy and the top-level package surface."""

import pytest

import repro
from repro.errors import (
    DatasetNotFoundError,
    EdgeNotFoundError,
    ExperimentError,
    GraphError,
    GraphFormatError,
    InvalidDistanceThresholdError,
    ParameterError,
    ReproError,
    SolverTimeoutError,
    VertexNotFoundError,
)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for error_class in (GraphError, VertexNotFoundError, EdgeNotFoundError,
                            ParameterError, InvalidDistanceThresholdError,
                            GraphFormatError, DatasetNotFoundError,
                            SolverTimeoutError, ExperimentError):
            assert issubclass(error_class, ReproError)

    def test_lookup_errors_are_also_key_errors(self):
        assert issubclass(VertexNotFoundError, KeyError)
        assert issubclass(DatasetNotFoundError, KeyError)

    def test_parameter_errors_are_value_errors(self):
        assert issubclass(ParameterError, ValueError)
        assert issubclass(InvalidDistanceThresholdError, ValueError)

    def test_messages_carry_context(self):
        error = VertexNotFoundError(42)
        assert "42" in str(error)
        assert error.vertex == 42
        edge_error = EdgeNotFoundError(1, 2)
        assert edge_error.edge == (1, 2)
        h_error = InvalidDistanceThresholdError(0)
        assert h_error.h == 0
        dataset_error = DatasetNotFoundError("x", ("a", "b"))
        assert "a" in str(dataset_error)
        timeout = SolverTimeoutError(3.5)
        assert timeout.budget_seconds == 3.5


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_example(self):
        g = repro.Graph([(1, 2), (2, 3), (3, 1), (3, 4)])
        decomposition = repro.core_decomposition(g, h=2)
        assert decomposition.degeneracy == 3

"""Unit tests for the core Graph data structure."""

import pytest

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_from_edge_list(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_from_vertices_and_edges(self):
        g = Graph(edges=[(1, 2)], vertices=[5, 6])
        assert g.num_vertices == 4
        assert g.has_vertex(5)
        assert g.degree(5) == 0

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_parallel_edges_collapse(self):
        g = Graph([(1, 2), (1, 2), (2, 1)])
        assert g.num_edges == 1

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex("a")
        g.add_vertex("a")
        assert g.num_vertices == 1

    def test_string_vertices(self):
        g = Graph([("alice", "bob"), ("bob", "carol")])
        assert g.degree("bob") == 2


class TestMutation:
    def test_remove_vertex(self):
        g = Graph([(1, 2), (2, 3), (1, 3)])
        g.remove_vertex(2)
        assert not g.has_vertex(2)
        assert g.num_edges == 1
        assert g.has_edge(1, 3)

    def test_remove_missing_vertex_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex(99)

    def test_remove_vertices_from(self):
        g = Graph([(1, 2), (2, 3), (3, 4)])
        g.remove_vertices_from([1, 4])
        assert set(g.vertices()) == {2, 3}
        assert g.num_edges == 1

    def test_remove_edge(self):
        g = Graph([(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_vertex(1)

    def test_remove_missing_edge_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 3)

    def test_add_edges_from(self):
        g = Graph()
        g.add_edges_from([(1, 2), (3, 4)])
        assert g.num_edges == 2


class TestVersionAndListeners:
    def test_version_starts_at_zero(self):
        assert Graph().version == 0

    def test_structural_changes_bump_version(self):
        g = Graph()
        g.add_vertex(1)
        after_vertex = g.version
        assert after_vertex > 0
        g.add_edge(1, 2)
        after_edge = g.version
        assert after_edge > after_vertex
        g.remove_edge(1, 2)
        assert g.version > after_edge
        before_removal = g.version
        g.remove_vertex(2)
        assert g.version > before_removal

    def test_idempotent_noops_do_not_bump_version(self):
        g = Graph([(1, 2)])
        version = g.version
        g.add_vertex(1)
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.version == version

    def test_listener_receives_events(self):
        g = Graph()
        log = []
        g.add_mutation_listener(lambda event, payload: log.append((event, payload)))
        g.add_edge(1, 2)
        g.remove_edge(1, 2)
        g.remove_vertex(1)
        assert ("add_vertex", 1) in log
        assert ("add_edge", (1, 2)) in log
        assert ("remove_edge", (1, 2)) in log
        assert log[-1] == ("remove_vertex", (1, frozenset()))

    def test_remove_vertex_event_carries_incident_neighbors(self):
        # Incident edges vanish without individual remove_edge events; the
        # payload's neighbor set is what touched-adjacency trackers need.
        g = Graph([(1, 2), (1, 3), (2, 3)])
        log = []
        g.add_mutation_listener(lambda event, payload: log.append((event, payload)))
        g.remove_vertex(1)
        assert log == [("remove_vertex", (1, frozenset({2, 3})))]

    def test_listener_not_called_for_noops(self):
        g = Graph([(1, 2)])
        log = []
        g.add_mutation_listener(lambda event, payload: log.append(event))
        g.add_edge(1, 2)
        assert log == []

    def test_remove_listener(self):
        g = Graph()
        log = []
        listener = lambda event, payload: log.append(event)  # noqa: E731
        g.add_mutation_listener(listener)
        g.remove_mutation_listener(listener)
        g.add_vertex(1)
        assert log == []

    def test_copy_does_not_share_version_or_listeners(self):
        g = Graph([(1, 2)])
        log = []
        g.add_mutation_listener(lambda event, payload: log.append(event))
        clone = g.copy()
        clone.add_edge(2, 3)
        assert log == []
        assert clone.version != g.version or g.version == 0


class TestRemovalSemantics:
    """Removal behavior the dynamic engine depends on."""

    def test_remove_edge_keeps_isolated_endpoints(self):
        g = Graph([(1, 2)])
        g.remove_edge(1, 2)
        assert g.has_vertex(1) and g.has_vertex(2)
        assert g.degree(1) == 0 and g.degree(2) == 0

    def test_remove_edge_is_symmetric(self):
        g = Graph([(1, 2)])
        g.remove_edge(2, 1)
        assert not g.has_edge(1, 2)

    def test_remove_edge_twice_raises(self):
        g = Graph([(1, 2)])
        g.remove_edge(1, 2)
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 2)

    def test_errors_are_key_errors_and_graph_errors(self):
        g = Graph([(1, 2)])
        with pytest.raises(KeyError):
            g.remove_vertex(9)
        with pytest.raises(GraphError):
            g.remove_edge(1, 9)

    def test_remove_vertex_after_neighbor_removed(self):
        g = Graph([(1, 2), (2, 3)])
        g.remove_vertex(2)
        g.remove_vertex(1)
        assert set(g.vertices()) == {3}

    def test_removed_edge_error_carries_edge(self):
        g = Graph([(1, 2)])
        with pytest.raises(EdgeNotFoundError) as excinfo:
            g.remove_edge(1, 3)
        assert excinfo.value.edge == (1, 3)

    def test_removed_vertex_error_carries_vertex(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError) as excinfo:
            g.remove_vertex("ghost")
        assert excinfo.value.vertex == "ghost"


class TestQueries:
    def test_neighbors(self):
        g = Graph([(1, 2), (1, 3), (2, 3)])
        assert g.neighbors(1) == {2, 3}

    def test_neighbors_missing_vertex(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.neighbors(42)

    def test_degree_and_degrees(self):
        g = Graph([(1, 2), (1, 3)])
        assert g.degree(1) == 2
        assert g.degrees() == {1: 2, 2: 1, 3: 1}

    def test_contains_and_len_and_iter(self):
        g = Graph([(1, 2)])
        assert 1 in g
        assert 9 not in g
        assert len(g) == 2
        assert set(iter(g)) == {1, 2}

    def test_edges_iterated_once(self):
        g = Graph([(1, 2), (2, 3), (3, 1)])
        edges = list(g.edges())
        assert len(edges) == 3
        normalized = {frozenset(e) for e in edges}
        assert normalized == {frozenset({1, 2}), frozenset({2, 3}), frozenset({1, 3})}

    def test_has_edge_symmetric(self):
        g = Graph([(1, 2)])
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)
        assert not g.has_edge(1, 99)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = Graph([(1, 2)])
        clone = g.copy()
        clone.add_edge(2, 3)
        assert g.num_vertices == 2
        assert clone.num_vertices == 3

    def test_copy_equality(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.copy() == g

    def test_subgraph_induces_edges(self):
        g = Graph([(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = g.subgraph([1, 2, 3])
        assert set(sub.vertices()) == {1, 2, 3}
        assert sub.num_edges == 2

    def test_subgraph_ignores_unknown_vertices(self):
        g = Graph([(1, 2)])
        sub = g.subgraph([1, 2, 99])
        assert set(sub.vertices()) == {1, 2}

    def test_relabeled(self):
        g = Graph([("x", "y"), ("y", "z")])
        relabeled, mapping = g.relabeled()
        assert set(relabeled.vertices()) == {0, 1, 2}
        assert relabeled.num_edges == 2
        assert set(mapping) == {"x", "y", "z"}

    def test_to_adjacency_lists(self):
        g = Graph([(1, 2), (1, 3)])
        adjacency = g.to_adjacency_lists()
        assert adjacency[1] == [2, 3]
        assert adjacency[2] == [1]

    def test_repr_mentions_sizes(self):
        g = Graph([(1, 2)])
        assert "2" in repr(g) and "1" in repr(g)

    def test_equality_with_non_graph(self):
        assert Graph() != 42


class TestRelabelOrder:
    """Cache-locality relabeling strategies for CSR builds (PR 5)."""

    def _star_with_tail(self):
        # hub 0 with leaves 1..4, plus a path 5-6 appended later.
        g = Graph([(0, 1), (0, 2), (0, 3), (0, 4), (5, 6)])
        return g

    def test_none_is_insertion_order(self):
        from repro.graph.csr import relabel_order

        g = self._star_with_tail()
        assert relabel_order(g, None) == list(g.vertices())
        assert relabel_order(g, "none") == list(g.vertices())

    def test_degree_descending_with_insertion_ties(self):
        from repro.graph.csr import relabel_order

        g = self._star_with_tail()
        order = relabel_order(g, "degree")
        assert order[0] == 0  # the hub
        # All degree-1 vertices follow in insertion order.
        assert order[1:] == [1, 2, 3, 4, 5, 6]

    def test_bfs_clusters_neighbors_per_component(self):
        from repro.graph.csr import relabel_order

        g = Graph([(0, 1), (1, 2), (2, 3), (3, 0), (10, 11)])
        order = relabel_order(g, "bfs")
        assert set(order) == set(g.vertices())
        # Within the cycle, each vertex appears adjacent to a neighbor.
        positions = {v: i for i, v in enumerate(order)}
        assert abs(positions[0] - positions[1]) <= 2
        # The second component comes as one contiguous run.
        tail = order[-2:]
        assert set(tail) == {10, 11}

    def test_deterministic_for_non_comparable_labels(self):
        from repro.graph.csr import relabel_order

        # Mixed label types: ties must never compare labels directly.
        g = Graph([("a", 1), (1, (2, 3)), (("x",), "a")])
        for strategy in ("degree", "bfs"):
            first = relabel_order(g, strategy)
            second = relabel_order(g, strategy)
            assert first == second
            assert set(first) == set(g.vertices())

    def test_unknown_strategy_rejected(self):
        from repro.errors import ParameterError
        from repro.graph.csr import relabel_order

        with pytest.raises(ParameterError):
            relabel_order(Graph([(0, 1)]), "random")

    def test_from_graph_relabel_preserves_topology(self):
        from repro.graph import CSRGraph

        g = self._star_with_tail()
        plain = CSRGraph.from_graph(g)
        for strategy in ("degree", "bfs"):
            permuted = CSRGraph.from_graph(g, relabel=strategy)
            assert permuted.num_vertices == plain.num_vertices
            assert permuted.num_edges == plain.num_edges
            for v in g.vertices():
                assert (permuted.neighbors_of_label(v)
                        == plain.neighbors_of_label(v))

"""Endpoint battery + fault injection for the (k,h)-core query service.

Three batteries:

* **Endpoint correctness** — every query type, across all generator
  families for h in {1, 2, 3}: responses are bit-identical to a
  from-scratch :func:`repro.core.core_decomposition` (or
  :func:`repro.core.spectrum.core_spectrum`) on the same graph, before and
  after streamed updates.
* **Fault injection** — malformed JSON, unknown vertices, oversized bodies
  and batches, clients that disconnect mid-update, protocol garbage and
  engine fallback-to-full-recompute under load all produce clean JSON
  errors and leave the server serving, with no fd leaks.
* **Epoch freezing** — published snapshots are immutable: later updates
  never mutate a snapshot a reader already holds.
"""

import asyncio
import json
import os
import sys

import pytest

from repro.core import core_decomposition
from repro.core.spectrum import core_spectrum
from repro.errors import ParameterError
from repro.graph import Graph
from repro.graph import generators as gen
from repro.serve import CoreService, OversizedBatchError, core_checksum
from repro.serve.loadgen import AsyncHTTPClient, percentile
from repro.serve.snapshot import CoreSnapshot

from serve_helpers import run_serve_session, wire_cores, wire_vertex
from test_dynamic_properties import FAMILIES


# --------------------------------------------------------------------- #
# endpoint correctness
# --------------------------------------------------------------------- #
class TestEndpointBattery:
    @pytest.mark.parametrize("h", [1, 2, 3])
    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    def test_all_queries_match_from_scratch(self, family, h):
        graph = FAMILIES[family]()
        expected = core_decomposition(graph.copy(), h).core_index
        service = CoreService(graph, h=h)

        async def scenario(server, client):
            # Full core map: bit-identical, with a verifiable checksum.
            status, payload = await client.request("GET", "/cores")
            assert status == 200
            cores = wire_cores(payload)
            assert cores == expected
            assert core_checksum(cores) == payload["checksum"]

            # Point lookups for a sample of vertices (incl. membership).
            degeneracy = max(expected.values(), default=0)
            sample = sorted(expected, key=repr)[:3]
            for v in sample:
                status, payload = await client.request(
                    "GET", f"/core_number?v={json.dumps(v)}&k={degeneracy}"
                )
                assert status == 200
                assert payload["core"] == expected[v]
                assert payload["in_core"] == (expected[v] >= degeneracy)

            # Core membership at the innermost level.
            status, payload = await client.request(
                "GET", f"/core?k={degeneracy}"
            )
            assert status == 200
            members = {wire_vertex(v) for v in payload["vertices"]}
            assert members == {v for v, c in expected.items()
                              if c >= degeneracy}

            # Subgraph extraction matches the library's core_subgraph.
            status, payload = await client.request("GET", "/core_subgraph?k=1")
            assert status == 200
            got_vertices = {wire_vertex(v) for v in payload["vertices"]}
            got_edges = {frozenset((wire_vertex(u), wire_vertex(v)))
                         for u, v in payload["edges"]}
            core_graph = service.engine.decomposition().core_subgraph(1)
            assert got_vertices == set(core_graph.vertices())
            assert got_edges == {frozenset(e) for e in core_graph.edges()}
            return True

        assert run_serve_session(service, scenario)

    @pytest.mark.parametrize("family", ["erdos_renyi", "caveman", "star"])
    def test_updates_then_queries_stay_exact(self, family):
        from repro.dynamic import random_update_stream

        graph = FAMILIES[family]()
        updates = random_update_stream(graph, 12, new_vertex_p=0.1, seed=5)
        service = CoreService(graph, h=2)

        async def scenario(server, client):
            for op, u, v in updates:
                status, payload = await client.request(
                    "POST", "/update", {"updates": [[op, u, v]]}
                )
                assert status == 200
                status, payload = await client.request("GET", "/cores")
                assert status == 200
                expected = core_decomposition(
                    service.engine.graph.copy(), 2
                ).core_index
                assert wire_cores(payload) == expected
            return True

        assert run_serve_session(service, scenario)

    def test_secondary_thresholds_and_spectrum(self):
        graph = gen.relaxed_caveman_graph(3, 5, 0.2, seed=2)
        frozen = graph.copy()
        service = CoreService(graph, h=2)

        async def scenario(server, client):
            for h in (1, 3):
                status, payload = await client.request("GET", f"/cores?h={h}")
                assert status == 200
                expected = core_decomposition(frozen.copy(), h).core_index
                assert wire_cores(payload) == expected

                v = sorted(frozen.vertices(), key=repr)[0]
                status, payload = await client.request(
                    "GET", f"/core_number?v={json.dumps(v)}&h={h}"
                )
                assert status == 200
                assert payload["core"] == expected[v]

            spectrum = core_spectrum(frozen.copy(), [1, 2, 3])
            v = sorted(frozen.vertices(), key=repr)[1]
            status, payload = await client.request(
                "GET", f"/spectrum?v={json.dumps(v)}&hs=1,2,3"
            )
            assert status == 200
            assert [tuple(pair) for pair in payload["spectrum"]] == [
                (h, spectrum.decompositions[h].core_index[v])
                for h in (1, 2, 3)
            ]
            return True

        assert run_serve_session(service, scenario)

    def test_top_communities_are_core_components(self):
        from repro.traversal.components import connected_components

        graph = gen.caveman_graph(3, 5)
        frozen = graph.copy()
        service = CoreService(graph, h=2)

        async def scenario(server, client):
            status, payload = await client.request(
                "GET", "/top_communities?limit=10"
            )
            assert status == 200
            decomposition = core_decomposition(frozen.copy(), 2)
            k = decomposition.degeneracy
            expected = sorted(
                (sorted(component, key=repr)
                 for component in connected_components(
                     frozen, alive=decomposition.core(k))),
                key=lambda c: (-len(c), repr(c[0])),
            )
            got = [
                [wire_vertex(v) for v in community["vertices"]]
                for community in payload["communities"]
            ]
            assert got == expected
            assert all(c["k"] == k for c in payload["communities"])
            assert all(c["avg_h_degree"] > 0 for c in payload["communities"])
            return True

        assert run_serve_session(service, scenario)

    def test_health_and_stats_reflect_served_traffic(self):
        service = CoreService(gen.cycle_graph(8), h=2, name="ring")

        async def scenario(server, client):
            status, payload = await client.request("GET", "/healthz")
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["graph"] == "ring"
            assert payload["vertices"] == 8 and payload["edges"] == 8

            await client.request("GET", "/core_number?v=0")
            await client.request("POST", "/update", {"updates": [["+", 0, 4]]})
            status, payload = await client.request("GET", "/stats")
            assert status == 200
            assert payload["requests"]["core_number"] == 1
            assert payload["requests"]["update"] == 1
            assert payload["maintenance"]["updates_applied"] == 1
            return True

        assert run_serve_session(service, scenario)


# --------------------------------------------------------------------- #
# fault injection
# --------------------------------------------------------------------- #
class TestFaultInjection:
    def _service(self, **kwargs):
        return CoreService(gen.relaxed_caveman_graph(3, 4, 0.1, seed=1),
                           h=2, **kwargs)

    def test_malformed_json_and_bad_ops_are_400(self):
        service = self._service()

        async def scenario(server, client):
            status, payload = await client.request("POST", "/update")
            assert status == 400 and "error" in payload

            # Raw non-JSON body.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            garbage = b"{not json"
            writer.write(
                b"POST /update HTTP/1.1\r\nContent-Length: "
                + str(len(garbage)).encode() + b"\r\n\r\n" + garbage
            )
            await writer.drain()
            line = await reader.readline()
            assert b"400" in line
            writer.close()
            await writer.wait_closed()

            status, payload = await client.request(
                "POST", "/update", {"updates": [["x", 0, 1]]}
            )
            assert status == 400
            status, payload = await client.request(
                "POST", "/update", {"updates": [["+", 0]]}
            )
            assert status == 400
            status, payload = await client.request(
                "POST", "/update", {"wrong": "shape"}
            )
            assert status == 400

            # Self-loop insertion is rejected pre-mutation.
            status, payload = await client.request(
                "POST", "/update", {"updates": [["+", 0, 0]]}
            )
            assert status == 400

            # ... and the server is still serving.
            status, payload = await client.request("GET", "/healthz")
            assert status == 200
            return True

        assert run_serve_session(service, scenario)

    def test_unknown_vertex_paths_and_methods(self):
        service = self._service()

        async def scenario(server, client):
            status, payload = await client.request(
                "GET", "/core_number?v=99999"
            )
            assert status == 404 and "99999" in payload["error"]
            status, payload = await client.request(
                "GET", "/spectrum?v=99999&hs=1,2"
            )
            assert status == 404
            status, payload = await client.request("GET", "/nope")
            assert status == 404
            status, payload = await client.request("POST", "/cores")
            assert status == 405
            status, payload = await client.request("GET", "/core_number")
            assert status == 400  # missing v=
            status, payload = await client.request("GET", "/core")
            assert status == 400  # missing k=
            status, payload = await client.request("GET", "/cores?h=0")
            assert status == 400
            status, payload = await client.request(
                "GET", "/core_number?v=0&h=xyz"
            )
            assert status == 400
            return True

        assert run_serve_session(service, scenario)

    def test_deleting_a_missing_edge_is_a_clean_conflict(self):
        service = self._service()

        async def scenario(server, client):
            before = service.snapshot.generation
            status, payload = await client.request(
                "POST", "/update", {"updates": [["-", 0, 99999]]}
            )
            assert status == 409
            # The failed batch left no trace: same epoch, still serving.
            status, payload = await client.request("GET", "/cores")
            assert status == 200
            assert payload["generation"] == before
            return True

        assert run_serve_session(service, scenario)

    def test_oversized_batch_and_body_are_413(self):
        service = self._service(max_batch=4)

        async def scenario(server, client):
            server.max_body = 4096
            updates = [["+", 0, i] for i in range(100, 110)]
            status, payload = await client.request(
                "POST", "/update", {"updates": updates}
            )
            assert status == 413 and "batch" in payload["error"]

            # An oversized body is refused up front (connection closes).
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"POST /update HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"
            )
            await writer.drain()
            line = await reader.readline()
            assert b"413" in line
            writer.close()
            await writer.wait_closed()

            # Both refusals are pre-engine: epoch 1 is still published.
            status, payload = await client.request("GET", "/healthz")
            assert status == 200 and payload["generation"] == 1
            return True

        assert run_serve_session(service, scenario)

    def test_client_disconnect_mid_update_leaves_server_serving(self):
        service = self._service()

        async def scenario(server, client):
            before = service.snapshot.generation
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            # Promise a body, send half of it, vanish.
            writer.write(
                b"POST /update HTTP/1.1\r\nContent-Length: 500\r\n\r\n"
                b'{"updates": [["+", '
            )
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.05)

            status, payload = await client.request("GET", "/cores")
            assert status == 200
            assert payload["generation"] == before
            return True

        assert run_serve_session(service, scenario)

    def test_protocol_garbage_gets_a_400(self):
        service = self._service()

        async def scenario(server, client):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"COMPLETE NONSENSE\r\n\r\n")
            await writer.drain()
            line = await reader.readline()
            assert b"400" in line
            writer.close()
            await writer.wait_closed()

            status, _ = await client.request("GET", "/healthz")
            assert status == 200
            return True

        assert run_serve_session(service, scenario)

    def test_fallback_to_full_recompute_under_load_stays_consistent(self):
        # fallback_ratio=0 forces every batch down the full-recompute path
        # (the degraded mode a hub-densifying workload would trigger).
        service = self._service(fallback_ratio=0.0)

        async def scenario(server, client):
            for step in range(6):
                status, payload = await client.request(
                    "POST", "/update", {"updates": [["+", 0, 50 + step]]}
                )
                assert status == 200 and payload["mode"] == "full"
                status, payload = await client.request("GET", "/cores")
                assert status == 200
                expected = core_decomposition(
                    service.engine.graph.copy(), 2
                ).core_index
                assert wire_cores(payload) == expected
            assert service.engine.stats.full_recomputes >= 6
            return True

        assert run_serve_session(service, scenario)

    @pytest.mark.skipif(not sys.platform.startswith("linux"),
                        reason="fd probing reads /proc/self/fd")
    def test_no_fd_leaks_across_connections_and_shutdown(self):
        def open_fds():
            return len(os.listdir("/proc/self/fd"))

        service = self._service()
        before = open_fds()

        async def scenario(server, client):
            # Churn connections: each cycle must return its socket.
            for _ in range(20):
                extra = await AsyncHTTPClient(
                    "127.0.0.1", server.port
                ).connect()
                status, _ = await extra.request("GET", "/healthz")
                assert status == 200
                await extra.close()
            # Plus an abandoned half-request.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"GET /healthz HTTP/1.1\r\n")
            writer.close()
            await writer.wait_closed()
            return True

        assert run_serve_session(service, scenario)
        # The event loop, server socket and every connection are gone;
        # allow a little slack for interpreter-internal churn.
        assert open_fds() <= before + 3


# --------------------------------------------------------------------- #
# epoch freezing
# --------------------------------------------------------------------- #
class TestEpochFreezing:
    def test_published_snapshot_is_immutable(self):
        service = CoreService(gen.cycle_graph(6), h=2)
        snapshot = service.snapshot
        with pytest.raises(TypeError):
            snapshot.cores[0] = 99  # type: ignore[index]
        service.close()

    def test_old_epochs_survive_later_updates_unchanged(self):
        service = CoreService(gen.cycle_graph(8), h=2)
        old = service.snapshot
        old_cores = dict(old.cores)
        old_edges = old.csr.num_edges
        service.apply_updates_sync([("+", 0, 4), ("-", 0, 1)])
        new = service.snapshot
        assert new.generation == old.generation + 1
        # The old epoch is byte-for-byte what it was at publication.
        assert dict(old.cores) == old_cores
        assert old.csr.num_edges == old_edges
        assert core_checksum(old.cores) == old.checksum
        # And the new epoch matches a from-scratch run.
        expected = core_decomposition(service.engine.graph.copy(), 2)
        assert dict(new.cores) == expected.core_index
        service.close()

    def test_snapshot_queries_validate_parameters(self):
        service = CoreService(gen.cycle_graph(6), h=2)
        snapshot = service.snapshot
        with pytest.raises(ParameterError):
            snapshot.core_members(-1)
        with pytest.raises(ParameterError):
            snapshot.top_communities(limit=0)
        service.close()

    def test_oversized_batch_error_is_pre_engine(self):
        service = CoreService(gen.cycle_graph(6), h=2, max_batch=2)
        with pytest.raises(OversizedBatchError):
            service.parse_updates(
                {"updates": [["+", 0, 2], ["+", 0, 3], ["+", 1, 4]]}
            )
        assert service.engine.stats.batches == 0
        service.close()


# --------------------------------------------------------------------- #
# unit coverage for helpers the batteries lean on
# --------------------------------------------------------------------- #
class TestHelpers:
    def test_core_checksum_is_order_independent(self):
        a = {0: 2, 1: 3, "x": 1, (0, 1): 2}
        b = dict(reversed(list(a.items())))
        assert core_checksum(a) == core_checksum(b)
        assert core_checksum(a) != core_checksum({**a, 0: 3})

    def test_percentile_interpolates(self):
        assert percentile([], 99) == 0.0
        assert percentile([5.0], 50) == 5.0
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_snapshot_repr_and_sizes(self):
        service = CoreService(gen.cycle_graph(5), h=1)
        snapshot = service.snapshot
        assert isinstance(snapshot, CoreSnapshot)
        assert "generation=1" in repr(snapshot)
        assert snapshot.core_sizes() == {0: 5, 1: 5, 2: 5}
        service.close()

    def test_csr_induced_edges(self):
        from repro.graph.csr import CSRGraph

        csr = CSRGraph.from_graph(
            Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        )
        indices = [csr.index(v) for v in (0, 1, 2)]
        edges = {
            frozenset((csr.labels[i], csr.labels[j]))
            for i, j in csr.induced_edges(indices)
        }
        assert edges == {frozenset((0, 1)), frozenset((1, 2)),
                         frozenset((0, 2))}
        assert csr.induced_edges([]) == []

"""Correctness tests for the three (k,h)-core algorithms (h-BZ, h-LB, h-LB+UB).

Every algorithm is validated against the naive reference implementation on a
battery of deterministic graphs and random graphs, for several values of h.
"""

import pytest

from repro.core import (
    core_decomposition,
    h_bz,
    h_lb,
    h_lb_ub,
    naive_core_decomposition,
)
from repro.errors import InvalidDistanceThresholdError
from repro.graph import Graph
from repro.graph.generators import (
    caveman_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
    watts_strogatz_graph,
)
from repro.instrumentation import Counters

ALGORITHMS = {
    "h-BZ": h_bz,
    "h-LB": h_lb,
    "h-LB+UB": h_lb_ub,
}


def assert_matches_naive(graph, h):
    expected = naive_core_decomposition(graph, h).core_index
    for name, algorithm in ALGORITHMS.items():
        got = algorithm(graph, h).core_index
        assert got == expected, f"{name} disagrees with the naive oracle for h={h}"


class TestAgainstNaiveOracle:
    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_deterministic_graphs(self, h, standard_graphs):
        for name, graph in standard_graphs.items():
            assert_matches_naive(graph, h)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("h", [2, 3])
    def test_random_graphs(self, seed, h):
        graph = erdos_renyi_graph(22, 0.14, seed=seed)
        assert_matches_naive(graph, h)

    @pytest.mark.parametrize("h", [2, 4])
    def test_sparse_tree(self, h):
        assert_matches_naive(random_tree(25, seed=2), h)

    @pytest.mark.parametrize("h", [2, 3])
    def test_small_world(self, h):
        assert_matches_naive(watts_strogatz_graph(20, 4, 0.2, seed=1), h)

    def test_disconnected_graph(self, disconnected_graph):
        assert_matches_naive(disconnected_graph, 2)

    def test_paper_style_graph(self, paper_style_graph):
        assert_matches_naive(paper_style_graph, 2)
        assert_matches_naive(paper_style_graph, 3)


class TestPaperStyleGraphStructure:
    def test_distance_2_decomposition_is_finer_than_classic(self, paper_style_graph):
        classic = core_decomposition(paper_style_graph, 1)
        distance2 = core_decomposition(paper_style_graph, 2)
        assert len(set(distance2.core_index.values())) >= len(set(classic.core_index.values()))
        # The sparse tail (vertex 1) lands in a strictly lower (k,2)-core than
        # the dense region (vertices 4..13), like Figure 1 of the paper.
        assert distance2.core_index[1] < distance2.core_index[4]

    def test_tail_vertices_between(self, paper_style_graph):
        decomposition = core_decomposition(paper_style_graph, 2)
        assert (decomposition.core_index[1]
                <= decomposition.core_index[2]
                <= decomposition.core_index[4])


class TestSpecialShapes:
    @pytest.mark.parametrize("h", [2, 3, 5])
    def test_complete_graph(self, h):
        g = complete_graph(7)
        result = core_decomposition(g, h, algorithm="h-LB")
        assert all(c == 6 for c in result.core_index.values())

    def test_cycle_h2(self):
        result = h_lb(cycle_graph(10), 2)
        assert all(c == 4 for c in result.core_index.values())

    def test_star_h2(self):
        # All leaves are within distance 2 of each other through the hub.
        result = h_lb_ub(star_graph(6), 2)
        assert all(c == 6 for c in result.core_index.values())

    def test_path_h3(self):
        result = h_bz(path_graph(8), 3)
        assert max(result.core_index.values()) <= 6
        assert result.core_index == naive_core_decomposition(path_graph(8), 3).core_index

    def test_grid_h2(self):
        assert_matches_naive(grid_graph(4, 5), 2)

    def test_caveman_structure(self):
        g = caveman_graph(3, 5)
        result = h_lb(g, 2)
        # Each clique member reaches its whole clique plus the ring link(s).
        assert result.degeneracy >= 4

    def test_empty_and_single_vertex(self):
        for algorithm in ALGORITHMS.values():
            assert algorithm(Graph(), 2).core_index == {}
            single = Graph(vertices=["x"])
            assert algorithm(single, 2).core_index == {"x": 0}

    def test_isolated_vertices(self):
        g = cycle_graph(5)
        g.add_vertex(100)
        g.add_vertex(101)
        for algorithm in ALGORITHMS.values():
            result = algorithm(g, 2)
            assert result.core_index[100] == 0
            assert result.core_index[101] == 0


class TestAlgorithmParameters:
    def test_invalid_h_rejected(self):
        g = cycle_graph(5)
        for algorithm in ALGORITHMS.values():
            with pytest.raises(InvalidDistanceThresholdError):
                algorithm(g, 0)
            with pytest.raises(InvalidDistanceThresholdError):
                algorithm(g, "2")  # type: ignore[arg-type]

    def test_h1_reduces_to_classic(self, seeded_random_graph):
        from repro.core import classic_core_decomposition
        expected = classic_core_decomposition(seeded_random_graph).core_index
        for algorithm in ALGORITHMS.values():
            assert algorithm(seeded_random_graph, 1).core_index == expected

    @pytest.mark.parametrize("partition_size", [1, 2, 5])
    def test_hlbub_partition_size(self, partition_size):
        g = erdos_renyi_graph(20, 0.18, seed=8)
        expected = naive_core_decomposition(g, 2).core_index
        assert h_lb_ub(g, 2, partition_size=partition_size).core_index == expected

    def test_hlb_with_lb1_only(self):
        g = erdos_renyi_graph(20, 0.15, seed=9)
        expected = naive_core_decomposition(g, 3).core_index
        assert h_lb(g, 3, use_lb1_only=True).core_index == expected

    def test_hlbub_with_hdegree_upper_bound(self):
        g = erdos_renyi_graph(20, 0.15, seed=10)
        expected = naive_core_decomposition(g, 2).core_index
        assert h_lb_ub(g, 2, use_hdegree_as_upper_bound=True).core_index == expected

    def test_multithreaded_matches_sequential(self):
        g = erdos_renyi_graph(24, 0.15, seed=11)
        sequential = h_lb_ub(g, 2, num_threads=1).core_index
        threaded = h_lb_ub(g, 2, num_threads=4).core_index
        assert sequential == threaded

    def test_counters_populated(self):
        g = erdos_renyi_graph(18, 0.2, seed=12)
        counters = Counters()
        h_bz(g, 2, counters=counters)
        assert counters.vertices_visited > 0
        assert counters.bfs_calls > 0

    def test_lower_bound_algorithm_visits_fewer_vertices(self):
        g = caveman_graph(4, 6)
        bz_counters, lb_counters = Counters(), Counters()
        h_bz(g, 2, counters=bz_counters)
        h_lb(g, 2, counters=lb_counters)
        assert lb_counters.vertices_visited <= bz_counters.vertices_visited

    def test_removal_order_recorded_by_hbz_and_hlb(self):
        g = erdos_renyi_graph(15, 0.2, seed=13)
        assert sorted(h_bz(g, 2).removal_order, key=repr) == sorted(g.vertices(), key=repr)
        assert sorted(h_lb(g, 2).removal_order, key=repr) == sorted(g.vertices(), key=repr)

"""Graceful-shutdown test: SIGTERM against a real ``kh-core serve`` process.

Spawns the CLI in a subprocess, waits for the ready line, delivers
SIGTERM, and asserts the documented contract: exit code 0, the drain
message on stderr, and a final epoch published before exit.  This is the
in-repo version of the CI smoke (``tests-chaos`` leg), kept as a test so
the contract breaks loudly offline too.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest


def _spawn_server():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--demo", "--port", "0",
         "--grace", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)


def _wait_for_ready(proc, deadline=30.0):
    """Read stderr until the '# serving on' announcement (line-buffered)."""
    start = time.time()
    while time.time() - start < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        if "# serving on" in line:
            return line
    pytest.fail("server never announced readiness")


class TestSigtermDrain:
    def test_sigterm_drains_and_exits_zero(self):
        proc = _spawn_server()
        try:
            _wait_for_ready(proc)
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, stderr
        assert "drained" in stderr
        assert "final epoch" in stderr

    def test_sigint_also_exits_zero(self):
        proc = _spawn_server()
        try:
            _wait_for_ready(proc)
            proc.send_signal(signal.SIGINT)
            stdout, stderr = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, stderr

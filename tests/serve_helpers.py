"""Shared plumbing for the query-service tests.

pytest-asyncio is deliberately not a dependency: each test runs one whole
server-plus-clients scenario under ``asyncio.run`` via
:func:`run_serve_session`, which also guarantees service teardown (writer
thread, engine pools) even when the scenario fails.
"""

from __future__ import annotations

import asyncio

from repro.serve import CoreServer, CoreService
from repro.serve.loadgen import AsyncHTTPClient


def wire_vertex(value):
    """Undo JSON's tuple -> list conversion on a decoded vertex label."""
    if isinstance(value, list):
        return tuple(wire_vertex(item) for item in value)
    return value


def wire_cores(payload):
    """Decode a ``GET /cores`` payload into a ``{vertex: core}`` dict."""
    return {wire_vertex(v): c for v, c in payload["cores"]}


def run_serve_session(service: CoreService, scenario):
    """Serve ``service`` on an ephemeral port and run ``scenario(server, client)``.

    ``scenario`` is an async callable receiving the started server and one
    connected client; its return value is passed through.  Everything —
    client, server, service — is torn down afterwards.
    """

    async def _main():
        server = await CoreServer(service, port=0).start()
        client = await AsyncHTTPClient("127.0.0.1", server.port).connect()
        try:
            return await scenario(server, client)
        finally:
            await client.close()
            await server.aclose()

    try:
        return asyncio.run(_main())
    finally:
        service.close()

"""Tests for the real-dataset downloaders (repro.datasets.fetch).

Everything runs offline: specs are monkeypatched onto ``file://`` URLs
pointing at fixture archives built in the test's tmp dir, which exercises
the full download → verify → extract → normalize pipeline without any
network access.
"""

import gzip
import hashlib
import os
import tarfile

import pytest

from repro.datasets import fetch as fetch_mod
from repro.datasets import export_edge_list, fetch_dataset
from repro.datasets.fetch import RealDatasetSpec, default_cache_dir
from repro.errors import DatasetChecksumError, DatasetNotFoundError
from repro.graph import read_edge_list
from repro.graph.edgefile import canonical_lines, iter_records

RAW = "# a comment\n% another\n2 1\n1 2\n3 1\n4 4\n"


def _register(monkeypatch, spec):
    monkeypatch.setitem(fetch_mod._REAL, spec.name, spec)


def _plain_spec(tmp_path, monkeypatch, name="tiny", sha256=None):
    payload = tmp_path / f"{name}-upstream.txt"
    payload.write_text(RAW)
    spec = RealDatasetSpec(name, payload.as_uri(), "local",
                           "offline fixture", archive="plain",
                           sha256=sha256)
    _register(monkeypatch, spec)
    return spec, str(payload)


def _gz_spec(tmp_path, monkeypatch, name="tinygz"):
    payload = tmp_path / f"{name}-upstream.txt.gz"
    with gzip.open(payload, "wb") as handle:
        handle.write(RAW.encode())
    spec = RealDatasetSpec(name, payload.as_uri(), "local",
                           "offline gz fixture", archive="gz")
    _register(monkeypatch, spec)
    return spec


def _tar_spec(tmp_path, monkeypatch, name="tinytar", member="out.tiny"):
    inner = tmp_path / member
    inner.write_text(RAW)
    payload = tmp_path / f"{name}-upstream.tar.bz2"
    with tarfile.open(payload, "w:bz2") as tar:
        tar.add(inner, arcname=f"dataset-dir/{member}")
    spec = RealDatasetSpec(name, payload.as_uri(), "local",
                           "offline tar fixture", archive="tar.bz2")
    _register(monkeypatch, spec)
    return spec


class TestFetch:
    def test_plain_fetch_and_cache_layout(self, tmp_path, monkeypatch):
        _plain_spec(tmp_path, monkeypatch)
        cache = str(tmp_path / "cache")
        path = fetch_dataset("tiny", cache_dir=cache)
        assert path == os.path.join(cache, "tiny", "tiny.txt")
        assert open(path).read() == RAW
        assert os.path.exists(path + ".sha256")  # TOFU sidecar

    def test_gz_extraction(self, tmp_path, monkeypatch):
        _gz_spec(tmp_path, monkeypatch)
        path = fetch_dataset("tinygz", cache_dir=str(tmp_path / "cache"))
        assert open(path).read() == RAW
        graph = read_edge_list(path)
        assert graph.num_edges == 2  # dup orientation + self-loop dropped

    def test_tar_bz2_extracts_out_member(self, tmp_path, monkeypatch):
        _tar_spec(tmp_path, monkeypatch)
        path = fetch_dataset("tinytar", cache_dir=str(tmp_path / "cache"))
        assert open(path).read() == RAW

    def test_tar_without_out_member_fails(self, tmp_path, monkeypatch):
        _tar_spec(tmp_path, monkeypatch, name="badtar", member="data.tsv")
        with pytest.raises(DatasetNotFoundError):
            fetch_dataset("badtar", cache_dir=str(tmp_path / "cache"))

    def test_cache_reuse_skips_download(self, tmp_path, monkeypatch):
        _plain_spec(tmp_path, monkeypatch)
        cache = str(tmp_path / "cache")
        fetch_dataset("tiny", cache_dir=cache)

        def no_download(url, target):
            raise AssertionError("second fetch must not re-download")

        monkeypatch.setattr(fetch_mod, "_download", no_download)
        path = fetch_dataset("tiny", cache_dir=cache)
        assert open(path).read() == RAW

    def test_refresh_redownloads(self, tmp_path, monkeypatch):
        spec, upstream = _plain_spec(tmp_path, monkeypatch)
        cache = str(tmp_path / "cache")
        fetch_dataset("tiny", cache_dir=cache)
        calls = []
        real_download = fetch_mod._download

        def counting_download(url, target):
            calls.append(url)
            return real_download(url, target)

        monkeypatch.setattr(fetch_mod, "_download", counting_download)
        fetch_dataset("tiny", cache_dir=cache, refresh=True)
        assert len(calls) == 1

    def test_unknown_name(self, tmp_path):
        with pytest.raises(DatasetNotFoundError):
            fetch_dataset("no-such-dataset", cache_dir=str(tmp_path))

    def test_default_cache_dir_env_override(self, monkeypatch):
        monkeypatch.setenv("KH_CORE_DATA_DIR", "/elsewhere/data")
        assert default_cache_dir() == "/elsewhere/data"
        monkeypatch.delenv("KH_CORE_DATA_DIR")
        assert default_cache_dir().endswith("kh-core-datasets")

    def test_every_registered_spec_is_wellformed(self):
        for name in fetch_mod.REAL_DATASET_NAMES:
            spec = fetch_mod.real_dataset_spec(name)
            assert spec.archive in ("gz", "tar.bz2", "plain")
            assert spec.url.startswith(("http://", "https://"))


class TestChecksums:
    def test_pinned_mismatch_raises(self, tmp_path, monkeypatch):
        _plain_spec(tmp_path, monkeypatch, name="pinned",
                    sha256="0" * 64)
        with pytest.raises(DatasetChecksumError, match="pinned"):
            fetch_dataset("pinned", cache_dir=str(tmp_path / "cache"))

    def test_pinned_match_passes(self, tmp_path, monkeypatch):
        digest = hashlib.sha256(RAW.encode()).hexdigest()
        _plain_spec(tmp_path, monkeypatch, name="pinned-ok", sha256=digest)
        path = fetch_dataset("pinned-ok", cache_dir=str(tmp_path / "cache"))
        assert open(path).read() == RAW

    def test_tofu_detects_tampering(self, tmp_path, monkeypatch):
        _plain_spec(tmp_path, monkeypatch)
        cache = str(tmp_path / "cache")
        path = fetch_dataset("tiny", cache_dir=cache)
        with open(path, "a") as handle:
            handle.write("666 667\n")  # corrupt the cached copy
        with pytest.raises(DatasetChecksumError, match="checksum"):
            fetch_dataset("tiny", cache_dir=cache)


class TestNormalize:
    def test_normalize_produces_canonical_form(self, tmp_path, monkeypatch):
        _plain_spec(tmp_path, monkeypatch)
        cache = str(tmp_path / "cache")
        path = fetch_dataset("tiny", cache_dir=cache, normalize=True)
        assert path.endswith(".canonical.txt")
        lines = open(path).read().splitlines()
        assert lines[0].startswith("# dataset tiny source=local")
        # Canonical: deduped, sorted, self-loop endpoint kept as a vertex.
        assert lines[1:] == ["1 2", "1 3", "4"]

    def test_normalize_round_trips_through_shared_parser(
            self, tmp_path, monkeypatch):
        _plain_spec(tmp_path, monkeypatch)
        cache = str(tmp_path / "cache")
        raw_path = fetch_dataset("tiny", cache_dir=cache)
        canonical = fetch_dataset("tiny", cache_dir=cache, normalize=True)
        assert ({frozenset(e) for e in read_edge_list(raw_path).edges()}
                == {frozenset(e)
                    for e in read_edge_list(canonical).edges()})
        # Re-normalizing the canonical file is a fixed point.
        graph = read_edge_list(canonical)
        assert (canonical_lines(graph)
                == open(canonical).read().splitlines()[1:])


class TestSharedWriter:
    """'datasets export' and fetch normalize share one edge-list dialect."""

    def test_export_and_normalize_agree_byte_for_byte(self, tmp_path):
        exported = str(tmp_path / "jazz.edges")
        graph = export_edge_list("jazz", exported, scale="tiny", seed=0)
        body = open(exported).read().splitlines()[1:]  # drop the header
        assert body == canonical_lines(graph)

    def test_exported_file_round_trips(self, tmp_path):
        exported = str(tmp_path / "caHe.edges")
        graph = export_edge_list("caHe", exported, scale="tiny", seed=1)
        loaded = read_edge_list(exported)
        assert set(loaded.vertices()) == set(graph.vertices())
        assert ({frozenset(e) for e in loaded.edges()}
                == {frozenset(e) for e in graph.edges()})

    def test_iter_records_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "mixed.txt"
        path.write_text("# c\n\n% d\n1 2 weight\nsolo\n")
        with open(path) as handle:
            records = list(iter_records(handle))
        assert [tokens for _, tokens in records] == [[1, 2], ["solo"]]

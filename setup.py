"""Setup shim.

The project metadata lives in ``pyproject.toml``.  This file exists so that
``python setup.py develop`` works on environments whose setuptools predates
the bundled ``bdist_wheel`` command (PEP 660 editable installs need the
``wheel`` package, which may not be available offline).
"""

from setuptools import setup

setup()

"""Distance-h coloring for conflict-free scheduling (§5.1).

Scenario from the paper: assign sessions (colors) so that no two entities
that are socially connected within h hops share a session — e.g. courtroom
scheduling, register allocation across a window of calls, or radio-frequency
assignment where interference propagates a couple of hops.

The distance-h chromatic number is NP-hard for h >= 2 (McCormick), but
Theorem 1 bounds it by ``1 + Ĉ_h(G)`` and the greedy coloring in reverse
smallest-last order stays close to that bound in practice.

Run with::

    python examples/scheduling_with_distance_coloring.py

Expected output (under a second): a table of h = 1..4 rows on a 196-vertex
road-like conflict graph showing colors used by the greedy smallest-last
coloring, the Theorem 1 bound ``1 + Ĉ_h(G)``, and the h-degeneracy — the
colors-used column stays at or below the bound (e.g. 7 colors vs bound 7 at
h = 2) — followed by the h = 2 session roster.
"""

from repro.applications.coloring import (
    chromatic_number_upper_bound,
    distance_h_greedy_coloring,
    is_valid_distance_h_coloring,
)
from repro.core import core_decomposition
from repro.datasets import load_dataset


def main() -> None:
    # A road-network-like conflict graph: interference is local, so the
    # distance-h structure matters and the graph stays sparse.
    graph = load_dataset("rnPA", scale="small", seed=0)
    print(f"conflict graph: {graph.num_vertices} vertices, {graph.num_edges} edges\n")

    print(f"{'h':>2} | {'colors used':>11} | {'Theorem 1 bound':>15} | {'degeneracy':>10}")
    print("-" * 50)
    for h in (1, 2, 3, 4):
        colors = distance_h_greedy_coloring(graph, h)
        assert is_valid_distance_h_coloring(graph, h, colors)
        used = len(set(colors.values()))
        bound = chromatic_number_upper_bound(graph, h)
        degeneracy = core_decomposition(graph, h).degeneracy
        print(f"{h:>2} | {used:>11} | {bound:>15} | {degeneracy:>10}")

    # Show the actual schedule for h = 2: one line per session.
    h = 2
    colors = distance_h_greedy_coloring(graph, h)
    sessions = {}
    for vertex, color in colors.items():
        sessions.setdefault(color, []).append(vertex)
    print(f"\nschedule for h = {h}: {len(sessions)} sessions")
    for color in sorted(sessions)[:5]:
        members = sorted(sessions[color])
        preview = ", ".join(str(v) for v in members[:10])
        suffix = "..." if len(members) > 10 else ""
        print(f"  session {color:>2} ({len(members):>3} slots): {preview}{suffix}")
    if len(sessions) > 5:
        print(f"  ... and {len(sessions) - 5} more sessions")


if __name__ == "__main__":
    main()

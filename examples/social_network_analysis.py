"""Social-network analysis with distance-generalized cores.

Scenario from the paper's introduction: on a social graph, the classic
core index saturates quickly (most users sit in a handful of shells), while
the (k,h)-core index for h = 2..4 gives a much finer "engagement spectrum"
per user.  This example:

1. loads the Facebook-like synthetic dataset,
2. computes the core "spectrum" (core index for h = 1..4) of each vertex,
3. extracts the distance-2 densest subgraph approximation (Theorem 4), and
4. answers a cocktail-party (community search) query around two seed users.

Run with::

    python examples/social_network_analysis.py

Expected output (a few seconds): the core "spectrum" (core index for
h = 1..4) of the ten highest-degree users of a 180-vertex social-like graph
— the h = 1 column saturates (most hubs share core 3) while the h >= 2
columns spread them out — followed by the distance-2 densest-core
approximation and a cocktail-party community around two seed users.
"""

from repro.applications.community import cocktail_party
from repro.applications.densest import densest_core_approximation
from repro.core import core_decomposition
from repro.datasets import load_dataset
from repro.traversal.components import largest_component

H_VALUES = (1, 2, 3, 4)


def main() -> None:
    graph = load_dataset("FBco", scale="small", seed=0)
    print(f"social graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 1-2. Per-vertex core spectrum across h values.
    decompositions = {h: core_decomposition(graph, h) for h in H_VALUES}
    print("\ncore spectrum of the ten highest-degree users "
          "(core index for h = 1, 2, 3, 4):")
    by_degree = sorted(graph.vertices(), key=lambda v: -graph.degree(v))[:10]
    for vertex in by_degree:
        spectrum = [decompositions[h][vertex] for h in H_VALUES]
        print(f"  user {vertex:>4} (degree {graph.degree(vertex):>3}): {spectrum}")

    for h in H_VALUES:
        decomposition = decompositions[h]
        print(f"h={h}: degeneracy {decomposition.degeneracy:>4}, "
              f"{decomposition.num_distinct_cores:>3} distinct cores, "
              f"innermost core size {len(decomposition.innermost_core())}")

    # 3. Distance-2 densest subgraph via the core approximation.
    densest = densest_core_approximation(graph, 2, decomposition=decompositions[2])
    print(f"\ndistance-2 densest-subgraph approximation: "
          f"{densest.size} vertices, average 2-degree {densest.density:.2f}")

    # 4. Community search around two well-connected seed users.
    component = sorted(largest_component(graph), key=repr)
    seeds = [component[0], component[1]]
    community = cocktail_party(graph, seeds, h=2, decomposition=decompositions[2])
    print(f"\ncocktail-party community for seeds {seeds}: "
          f"{community.size} members, minimum 2-degree {community.min_h_degree} "
          f"(found in the ({community.k},2)-core)")


if __name__ == "__main__":
    main()

"""Query service walkthrough: serve a graph, query it, stream updates in.

Starts the full serving stack in-process — a :class:`repro.serve.CoreService`
(one warm dynamic engine behind epoch publication) bound to an ephemeral
port by :class:`repro.serve.CoreServer` — then plays a short session with
the bundled asyncio HTTP client: health check, point lookups, core
extraction, a spectrum query, an update batch, and a read-back proving the
served state advanced to a new epoch that matches a from-scratch
decomposition.

Run with::

    python examples/serve_queries.py

Expected output (runs in well under a second): the served graph summary
(64 vertices), a few point lookups with their core indices, the innermost
core's members, a per-vertex core spectrum across h in {1, 2, 3}, the
update summary for a 3-update batch (generation 1 -> 2), and two final
checks — "old epoch intact: True" (the pre-update snapshot a reader might
still hold is unchanged) and "served == from-scratch: True".
"""

import asyncio

from repro.core import core_decomposition
from repro.graph.generators import relaxed_caveman_graph
from repro.serve import CoreServer, CoreService
from repro.serve.loadgen import AsyncHTTPClient


async def session() -> None:
    graph = relaxed_caveman_graph(8, 8, 0.15, seed=0)
    service = CoreService(graph, h=2, name="demo")
    try:
        server = await CoreServer(service, port=0).start()
        client = await AsyncHTTPClient("127.0.0.1", server.port).connect()
        try:
            _, health = await client.request("GET", "/healthz")
            print(f"serving {health['graph']!r}: |V|={health['vertices']} "
                  f"|E|={health['edges']} h={health['h']} "
                  f"degeneracy={health['degeneracy']}")

            for v in (0, 9, 33):
                _, reply = await client.request(
                    "GET", f"/core_number?v={v}&k=3")
                print(f"core({v}) = {reply['core']}  "
                      f"in (3,2)-core: {reply['in_core']}")

            k = health["degeneracy"]
            _, core = await client.request("GET", f"/core?k={k}")
            print(f"({k},2)-core: {core['size']} vertices "
                  f"{core['vertices'][:8]}...")

            _, spectrum = await client.request(
                "GET", "/spectrum?v=0&hs=1,2,3")
            print(f"spectrum(0) = {spectrum['spectrum']}")

            # One maintenance round; readers holding the old epoch are
            # unaffected (copy-on-publish).
            old = service.snapshot
            _, update = await client.request(
                "POST", "/update",
                {"updates": [["+", 0, 9], ["+", 0, 17], ["-", 1, 2]]})
            print(f"update: mode={update['mode']} "
                  f"applied={update['applied']} "
                  f"generation {old.generation} -> {update['generation']}")

            from repro.serve import core_checksum
            print(f"old epoch intact: "
                  f"{core_checksum(old.cores) == old.checksum}")

            _, cores = await client.request("GET", "/cores")
            expected = core_decomposition(service.engine.graph.copy(), 2)
            served = {tuple(v) if isinstance(v, list) else v: c
                      for v, c in cores["cores"]}
            print(f"served == from-scratch: "
                  f"{served == expected.core_index}")
        finally:
            await client.close()
            await server.aclose()
    finally:
        service.close()


if __name__ == "__main__":
    asyncio.run(session())

"""Finding the maximum h-club with the (k,h)-core wrapper (Algorithm 7).

Scenario (§5.2 / §6.5): cohesive-group detection where membership requires
every pair of members to be close *within the group itself* — an h-club.
Finding a maximum h-club is NP-hard; the paper's contribution is that any
exact solver only ever needs to run inside (k,h)-cores, starting from the
innermost one (Theorem 3), which shrinks the instance dramatically.

This example compares, on a co-purchasing-like network:

* the standalone exact solvers (DBC-style branch and bound, ITDBC-style
  iterative solver), and
* the same solvers wrapped by Algorithm 7.

Run with::

    python examples/maximum_hclub_search.py

Expected output (a few seconds): the (k,2)-core decomposition of a
224-vertex co-purchasing-like graph (degeneracy ~10, innermost core ~11
vertices), then for each solver (DBC, ITDBC) the standalone search vs the
Algorithm 7 wrapper.  Both find the same optimal 2-club (~11 members), but
the wrapped runs explore orders of magnitude fewer branch-and-bound nodes —
often a single node, because the innermost core is itself an h-club.
"""

import time

from repro.applications.hclub import DBCSolver, ITDBCSolver, maximum_h_club_with_core
from repro.core import core_decomposition
from repro.datasets import load_dataset

H = 2
TIME_BUDGET_SECONDS = 60.0


def main() -> None:
    graph = load_dataset("amzn", scale="small", seed=0)
    print(f"co-purchasing graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges, h = {H}")

    decomposition = core_decomposition(graph, H)
    innermost = decomposition.innermost_core()
    print(f"(k,{H})-core decomposition: degeneracy {decomposition.degeneracy}, "
          f"innermost core has {len(innermost)} vertices "
          f"(the whole graph has {graph.num_vertices})")

    solvers = {"DBC": DBCSolver, "ITDBC": ITDBCSolver}
    for name, solver_class in solvers.items():
        start = time.perf_counter()
        standalone = solver_class(TIME_BUDGET_SECONDS).solve(graph, H)
        standalone_seconds = time.perf_counter() - start

        start = time.perf_counter()
        wrapped = maximum_h_club_with_core(
            graph, H, solver=solver_class(TIME_BUDGET_SECONDS),
            decomposition=decomposition)
        wrapped_seconds = time.perf_counter() - start

        print(f"\n{name}:")
        print(f"  standalone : size {standalone.size} "
              f"({'optimal' if standalone.optimal else 'TIMED OUT'}) "
              f"in {standalone_seconds:.2f}s, {standalone.nodes_explored} nodes")
        print(f"  Algorithm 7: size {wrapped.size} "
              f"({'optimal' if wrapped.optimal else 'TIMED OUT'}) "
              f"in {wrapped_seconds:.2f}s, {wrapped.nodes_explored} nodes")
        if standalone.optimal and wrapped.optimal:
            assert standalone.size == wrapped.size

    best = maximum_h_club_with_core(graph, H, decomposition=decomposition)
    print(f"\nmaximum {H}-club ({best.size} members): {sorted(best.vertices, key=repr)}")
    k = best.size - 1
    assert best.vertices <= decomposition.core(k), "Theorem 3 violated?!"
    print(f"…and, as Theorem 3 promises, it is contained in the ({k},{H})-core.")


if __name__ == "__main__":
    main()

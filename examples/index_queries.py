"""Persistent core index: build once, query as table reads, refresh in place.

Builds the (k,h)-core spectrum of a small community graph into a SQLite
index file (:func:`repro.index.build_index`), answers every query class
from the file alone (:class:`repro.index.CoreIndexReader`), applies a
batch of edge updates through the incremental refresher
(:class:`repro.index.IndexRefresher`), and finally reads the epoch diff
and deep-verifies the checksums — cross-checking each step against a
from-scratch decomposition.

Run with::

    python examples/index_queries.py

Expected output (runs in well under a second): the build report for a
72-vertex graph at h=1,2,3; a query phase (spectrum, membership
threshold, core members, core sizes) with "matches from-scratch: True";
a refresh phase whose batches report mode=incremental with a handful of
dirty rows each; the epoch diff listing exactly the moved vertices; and
"deep verify: OK".
"""

from tempfile import TemporaryDirectory
from pathlib import Path

from repro.core import core_decomposition
from repro.dynamic import random_update_stream
from repro.graph.generators import relaxed_caveman_graph
from repro.index import CoreIndexReader, IndexRefresher, build_index


def main() -> None:
    graph = relaxed_caveman_graph(12, 6, 0.08, seed=4)
    with TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "community.khidx")

        # Phase 1: persist the whole spectrum once.
        report = build_index(graph.copy(), path, h_values=(1, 2, 3))
        print(f"built {Path(path).name}: {report.num_vertices} vertices, "
              f"{report.rows_written} core rows, "
              f"h_values={list(report.h_values)}, "
              f"degeneracies={report.degeneracies}")

        # Phase 2: every query class is a table read — no decomposition
        # runs in this phase.
        with CoreIndexReader(path) as reader:
            v = 0
            print(f"\nspectrum of vertex {v}: {reader.spectrum(v)}")
            print(f"smallest h where vertex {v} reaches a 4-core: "
                  f"{reader.membership_threshold(v, k=4)}")
            members = reader.core_members(4, 2)
            print(f"(4,2)-core: {len(members)} members")
            sizes = reader.core_sizes(2)
            print(f"(k,2)-core sizes: { {k: n for k, n in sorted(sizes.items())} }")
            expected = core_decomposition(graph, 2).core_index
            print(f"matches from-scratch: {reader.core_map(2) == expected}")

        # Phase 3: refresh in place. Each batch rewrites only the rows
        # whose core index actually moved.
        print("\nrefreshing with 12 updates in batches of 4:")
        updates = random_update_stream(graph, 12, seed=2)
        with IndexRefresher(path, staleness_ratio=1.0) as refresher:
            for offset in range(0, len(updates), 4):
                summary = refresher.apply_batch(updates[offset:offset + 4])
                print(f"  epoch {summary.epoch}: mode={summary.mode} "
                      f"dirty_rows={summary.dirty_rows} "
                      f"of {summary.total_rows}")
            final_graph = refresher.graph.copy()

        # Phase 4: provenance and integrity from the file alone.
        with CoreIndexReader(path, verify=True) as reader:
            diff = reader.diff(1, reader.current_epoch, h=2)
            print(f"\nh=2 cores moved since the build: {len(diff)}")
            for vertex, (old, new) in sorted(diff.items())[:5]:
                print(f"  vertex {vertex}: {old} -> {new}")
            expected = core_decomposition(final_graph, 2).core_index
            print(f"still matches from-scratch: "
                  f"{reader.core_map(2) == expected}")
            reader.verify()
            print("deep verify: OK")


if __name__ == "__main__":
    main()

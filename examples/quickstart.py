"""Quickstart: compute a distance-generalized core decomposition.

Builds a small graph shaped like the paper's Figure 1 (a dense region with a
sparse tail), computes the classic core decomposition (h = 1) and the
(k,2)-core decomposition, and shows how the distance-generalized view
separates vertices that the classic view lumps together.

Run with::

    python examples/quickstart.py

Expected output (runs in well under a second): the 13-vertex graph's classic
core indices (tail vertices 1-3 at core 2, the dense region at core 3),
followed by the (k,2)-core indices, where the dense region rises to core 7
(the 2-degeneracy) while the tail stays behind — and lines confirming that
h-BZ, h-LB and h-LB+UB all agree with the facade result.
"""

from repro import Graph, core_decomposition
from repro.core import h_bz, h_lb, h_lb_ub


def build_example_graph() -> Graph:
    """A 13-vertex graph: dense ring-of-cliques region (4..13) plus a tail (1..3)."""
    edges = [
        (1, 2), (1, 3), (2, 3),          # the sparse tail
        (2, 4), (3, 5),                  # bridges into the dense region
        (4, 5), (4, 6), (4, 10),
        (5, 7), (5, 11),
        (6, 7), (6, 8), (6, 12),
        (7, 9), (7, 13),
        (8, 9), (8, 10),
        (9, 11),
        (10, 12), (11, 13), (12, 13),
    ]
    return Graph(edges)


def main() -> None:
    graph = build_example_graph()
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # Classic core decomposition: h = 1.
    classic = core_decomposition(graph, h=1)
    print("\nclassic core indices (h=1):")
    for vertex in sorted(graph.vertices()):
        print(f"  vertex {vertex:>2}: core {classic[vertex]}")

    # Distance-generalized decomposition: h = 2.
    distance2 = core_decomposition(graph, h=2)
    print("\n(k,2)-core indices:")
    for vertex in sorted(graph.vertices()):
        print(f"  vertex {vertex:>2}: core {distance2[vertex]}")

    print(f"\nh-degeneracy Ĉ_2(G) = {distance2.degeneracy}")
    print(f"innermost (k,2)-core: {sorted(distance2.innermost_core())}")

    # All three exact algorithms produce the same (unique) decomposition.
    for name, algorithm in (("h-BZ", h_bz), ("h-LB", h_lb), ("h-LB+UB", h_lb_ub)):
        result = algorithm(graph, 2)
        assert result.core_index == distance2.core_index
        print(f"{name:8s} agrees with the facade result")

    # The nested core structure (Property 2).
    print("\ncore sizes |C_k| for h=2:")
    sizes = distance2.core_sizes()
    for k in sorted(sizes):
        print(f"  k={k:>2}: {sizes[k]} vertices")


if __name__ == "__main__":
    main()

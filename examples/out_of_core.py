"""Out-of-core pipeline: stream-load an edge file, decompose via mmap.

Exports a collaboration-network stand-in to a plain edge-list file, then
runs the out-of-core path end to end: ``stream_load`` builds an on-disk
CSR block under a deliberately tiny RAM budget (forcing the external-sort
spill machinery a laptop-sized graph would never need), the block is
reopened as an mmap-backed read-only graph, and its (k,h)-core
decomposition is checked against the ordinary in-RAM path.

Run with::

    python examples/out_of_core.py

Expected output (a few seconds): the loader's stats line — vertices,
edges, duplicates dropped, spill runs written (several, despite the small
graph, because of the tiny budget); the block file's size on disk; a
``storage=mmap`` snapshot
summary; and two core-decomposition digests, mmap vs in-RAM, ending in
"identical: True".  Peak RAM stays flat no matter how large the input
file is — that is the point of the storage tier; see docs/scaling.md.
"""

import os
import tempfile

from repro.core import core_decomposition
from repro.datasets import export_edge_list
from repro.graph import FrozenGraphView, read_edge_list
from repro.graph.stream_load import stream_load_with_stats


def main():
    workdir = tempfile.mkdtemp(prefix="kh-core-example-")
    edges_path = os.path.join(workdir, "caHe.edges")
    block_path = os.path.join(workdir, "caHe.khcsr")

    export_edge_list("caHe", edges_path, scale="small", seed=0)
    print(f"edge file: {edges_path} "
          f"({os.path.getsize(edges_path)} bytes)")

    # A 256 KiB budget is absurdly small on purpose: it forces the loader
    # through its spill-and-merge path, the one that keeps RSS flat when
    # the input is 1000x larger than this example.
    csr, stats = stream_load_with_stats(edges_path, out_path=block_path,
                                        max_ram_bytes=256 * 1024)
    print(f"loaded: {stats.vertices} vertices, {stats.edges} edges, "
          f"{stats.duplicate_edges} duplicates dropped, "
          f"{stats.spill_runs} spill runs")
    print(f"block file: {block_path} "
          f"({os.path.getsize(block_path)} bytes), "
          f"storage={csr.storage_kind}")

    frozen = FrozenGraphView(csr)
    print(f"snapshot: {frozen!r}")
    mmap_cores = core_decomposition(frozen, h=2).core_index

    ram_graph = read_edge_list(edges_path)
    ram_cores = core_decomposition(ram_graph, h=2).core_index

    top = sorted(mmap_cores.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
    print("top-5 core numbers (mmap path):",
          ", ".join(f"{v}:{c}" for v, c in top))
    print(f"mmap vs in-RAM cores identical: {mmap_cores == ram_cores}")

    csr.close()
    for leftover in (edges_path, block_path):
        if os.path.exists(leftover):
            os.unlink(leftover)
    os.rmdir(workdir)


if __name__ == "__main__":
    main()

"""Streaming updates: maintain (k,h)-cores while the graph evolves.

Builds a small community graph, wraps it in the dynamic maintenance engine
(:class:`repro.dynamic.DynamicKHCore`), and replays a mixed insert/delete
edge stream three ways: one update at a time, in batches, and through the
full-recomputation fallback — printing, after each phase, the maintenance
statistics and a cross-check against a from-scratch decomposition.

Run with::

    python examples/streaming_updates.py

Expected output (runs in well under a second): the initial (k,2)-core
summary of a 72-vertex community graph; a per-update phase where most edge
deletions re-peel a dirty region of a few dozen vertices (mode=incremental)
while one falls back (mode=full); a batched phase applying 40 mixed updates
in 4 maintenance rounds; and a final stats dump — with every phase's core
numbers matching the from-scratch decomposition ("exact: True" three
times).
"""

from repro.core import core_decomposition
from repro.dynamic import DynamicKHCore, random_update_stream
from repro.graph.generators import relaxed_caveman_graph


def check(engine) -> bool:
    """Exactness cross-check: maintained cores == from-scratch cores."""
    expected = core_decomposition(engine.graph, engine.h).core_index
    return engine.core_numbers() == expected


def main() -> None:
    graph = relaxed_caveman_graph(12, 6, 0.08, seed=4)
    engine = DynamicKHCore(graph, h=2)
    print(f"initial graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges, backend={engine.backend}")
    decomposition = engine.decomposition()
    print(f"(k,2)-core degeneracy: {decomposition.degeneracy}, "
          f"distinct cores: {decomposition.num_distinct_cores}")

    # Phase 1: single updates. Deletions inside a community stay local —
    # watch the region sizes relative to |V|.
    print("\nphase 1: one update at a time")
    deletions = random_update_stream(graph, 5, insert_fraction=0.0, seed=1)
    for update in deletions:
        summary = engine.apply(*update)
        print(f"  {update.op} {update.u:>2} {update.v:>2}: "
              f"mode={summary.mode} region={summary.region_size} "
              f"universe={summary.universe_size} "
              f"cores_changed={summary.cores_changed}")
    print(f"  exact: {check(engine)}")

    # Phase 2: batches. One maintenance round amortizes many updates, the
    # right shape for high-rate streams.
    print("\nphase 2: 40 mixed updates in batches of 10")
    updates = random_update_stream(engine.graph, 40, seed=2)
    for offset in range(0, len(updates), 10):
        summary = engine.apply_batch(updates[offset:offset + 10])
        print(f"  batch {offset // 10}: mode={summary.mode} "
              f"applied={summary.applied} "
              f"cores_changed={summary.cores_changed}")
    print(f"  exact: {check(engine)}")

    # Phase 3: the fallback policy. A tiny threshold forces the full
    # recomputation path; results stay exact either way.
    print("\nphase 3: fallback (fallback_ratio=0.0)")
    strict = DynamicKHCore(engine.graph.copy(), h=2, fallback_ratio=0.0)
    summary = strict.insert_edge(0, 35)
    print(f"  insert across communities: mode={summary.mode}")
    print(f"  exact: {check(strict)}")

    print("\nlifetime stats of the main engine:")
    for key, value in engine.stats.as_dict().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()

"""Landmark-based shortest-path estimation with (k,h)-core landmarks (§6.6).

Scenario: a service needs fast approximate point-to-point distances on a
social graph (friend-recommendation ranking, latency-aware routing of
requests between users' home shards, ...).  Exact BFS per query is too slow,
so distances are estimated from a handful of precomputed landmark BFS trees.

The paper's finding (Table 7): picking the landmarks at random from the
*maximum (k,h)-core* — for h around 3-4 — gives better estimates than the
classic heuristics (closeness, betweenness, high degree), because inner-core
vertices are close to most of the network.

Run with::

    python examples/landmark_distance_oracle.py

Expected output (a few seconds): a table of landmark-selection strategies
with their mean relative distance-estimation error on 200 random vertex
pairs of a 180-vertex collaboration-like graph.  The max-core strategies
(h = 2..4) should land at or near the top of the ranking, with errors around
0.19-0.21, matching the paper's Table 7 trend at this tiny scale.
"""

from repro.applications.landmarks import (
    LandmarkOracle,
    evaluate_landmarks,
    select_landmarks,
)
from repro.core import core_decomposition
from repro.datasets import load_dataset

NUM_LANDMARKS = 10
NUM_QUERY_PAIRS = 200


def main() -> None:
    graph = load_dataset("caAs", scale="small", seed=0)
    print(f"collaboration graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")
    print(f"selecting {NUM_LANDMARKS} landmarks, evaluating on "
          f"{NUM_QUERY_PAIRS} random vertex pairs\n")

    strategies = (
        [("max (k,h)-core, h=%d" % h, "max-core", h) for h in (1, 2, 3, 4)]
        + [("closeness centrality", "closeness", 1),
           ("betweenness centrality", "betweenness", 1),
           ("top degree", "degree", 1),
           ("top 3-degree", "h-degree", 3),
           ("uniform random", "random", 1)]
    )

    results = []
    for label, strategy, h in strategies:
        decomposition = core_decomposition(graph, h) if strategy == "max-core" else None
        landmarks = select_landmarks(graph, NUM_LANDMARKS, strategy=strategy,
                                     h=h, seed=1, decomposition=decomposition)
        evaluation = evaluate_landmarks(graph, landmarks, num_pairs=NUM_QUERY_PAIRS,
                                        seed=2, strategy=label, h=h)
        results.append((label, evaluation.mean_relative_error))

    print(f"{'strategy':32s} mean relative error")
    print("-" * 55)
    for label, error in sorted(results, key=lambda item: item[1]):
        print(f"{label:32s} {error:.3f}")

    # Show one concrete query with the best strategy.
    best_label, _ = min(results, key=lambda item: item[1])
    print(f"\nbest strategy: {best_label}")
    decomposition = core_decomposition(graph, 4)
    landmarks = select_landmarks(graph, NUM_LANDMARKS, strategy="max-core", h=4,
                                 seed=1, decomposition=decomposition)
    oracle = LandmarkOracle(graph, landmarks)
    vertices = sorted(graph.vertices(), key=repr)
    s, t = vertices[0], vertices[-1]
    lower, upper = oracle.bounds(s, t)
    print(f"example query d({s}, {t}): bounds [{lower}, {upper}], "
          f"estimate {oracle.estimate(s, t)}")


if __name__ == "__main__":
    main()

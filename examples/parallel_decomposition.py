"""Parallel decomposition: serial vs process-pool wall time (§4.6).

Builds a Barabási–Albert graph (a power-law stand-in with the degree skew
the chunk planner exists for), then times the bulk h-degree pass — the
workload the paper parallelizes — under the serial, thread and process
executors, and finally runs a full (k,h)-core decomposition through the
process engine to show the end-to-end API.

Run with::

    python examples/parallel_decomposition.py

Expected output (a few seconds): the graph summary; one timing line per
executor for the bulk deg^h pass, each ending in "identical: True"
(parallelization never changes a single h-degree); and a full h-LB+UB
decomposition via ``executor="process"`` whose core numbers match the
serial run.  The speedup column depends on your machine: with one core, or
under the *thread* executor on any CPython build (the GIL serializes the
workers), expect ~1x or below; the *process* executor approaches the core
count once the graph is large enough to amortize dispatch — on a 4-core
box the final pass typically lands between 2x and 3.5x.
"""

import os
import time

from repro.core import core_decomposition
from repro.core.backends import CSREngine
from repro.graph.generators import barabasi_albert_graph

H = 3
WORKERS = min(4, os.cpu_count() or 1)


def timed_bulk_pass(engine, executor, workers):
    """One full bulk deg^h pass; returns (seconds, result)."""
    start = time.perf_counter()
    result = engine.bulk_h_degrees(H, num_threads=workers, executor=executor)
    return time.perf_counter() - start, result


def main() -> None:
    graph = barabasi_albert_graph(2500, 3, seed=0)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"h={H}, cores available: {os.cpu_count()}")

    engine = CSREngine(graph)
    try:
        serial_seconds, serial_result = timed_bulk_pass(engine, "serial", 1)
        print(f"\nbulk deg^{H} pass over all {graph.num_vertices} vertices:")
        print(f"  serial           : {serial_seconds * 1000:7.1f} ms")

        for executor in ("thread", "process"):
            # Warm-up dispatch: pool spin-up and the shared-memory export
            # should not be billed to the steady-state timing.
            engine.bulk_h_degrees(H, targets=range(16),
                                  num_threads=WORKERS, executor=executor)
            seconds, result = timed_bulk_pass(engine, executor, WORKERS)
            print(f"  {executor:<7} x{WORKERS} work.: {seconds * 1000:7.1f} ms "
                  f"(speedup {serial_seconds / seconds:4.2f}x, "
                  f"identical: {result == serial_result})")
    finally:
        engine.close()

    print("\nfull decomposition through the process engine (h-LB+UB, h=2):")
    start = time.perf_counter()
    parallel = core_decomposition(graph, 2, algorithm="h-LB+UB",
                                  backend="csr", num_workers=WORKERS,
                                  executor="process")
    parallel_seconds = time.perf_counter() - start
    serial = core_decomposition(graph, 2, algorithm="h-LB+UB", backend="csr")
    print(f"  executor=process: {parallel_seconds:5.2f}s, "
          f"degeneracy={parallel.degeneracy}, "
          f"identical to serial: "
          f"{parallel.core_index == serial.core_index}")


if __name__ == "__main__":
    main()

"""Benchmark: the cost of supervision — and the cost of recovery.

The supervised executor promises two things worth measuring rather than
assuming, recorded in ``BENCH_PR10.json`` (via
:func:`bench_utils.write_bench_json`, so CI uploads the artifact):

1. **Zero-fault overhead** — with no fault armed, routing every bulk
   dispatch through :class:`~repro.resilience.SupervisedExecutor`
   (deadline tracking, retry bookkeeping, result buffering) must cost at
   most ``MAX_OVERHEAD_RATIO`` over the raw shared-memory pool.  Both
   sides run the identical chunk plan against a warm pool; the toggle is
   ``KH_CORE_SUPERVISED``, which the engine honours by rebuilding its
   cached pool on the next dispatch.
2. **One-kill completion** — a worker SIGKILLed mid-decomposition
   (``worker.kill=1``: exactly one kill, first dispatch) must finish with
   a bit-identical result in at most ``MAX_KILL_SLOWDOWN``× the
   fault-free wall time.  The slowdown budget covers one pool rebuild,
   the retry backoff, and the re-dispatch of the chunks the dead worker
   took with it.

Set ``KH_CORE_BENCH_QUICK=1`` (the CI smoke mode) to shrink the graph and
relax the bars: at small n the fixed per-dispatch costs dominate the work
being supervised, and shared CI runners add wall-clock noise.  The strict
ratios are enforced in the full-size run.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import core_decomposition
from repro.graph import generators as gen
from repro.resilience import armed
from repro.runtime import ExecutionContext

from bench_utils import write_bench_json  # noqa: E402

ARTIFACT = "BENCH_PR10.json"
H = 2

QUICK = os.environ.get("KH_CORE_BENCH_QUICK", "") not in ("", "0")

#: Clique size of the relaxed-caveman benchmark graph (cliques × size).
NUM_CLIQUES = 12 if QUICK else 30
CLIQUE_SIZE = 14 if QUICK else 22

#: Timed repetitions per executor mode (best-of, warm pool).
OVERHEAD_REPS = 3 if QUICK else 9

#: Supervision must cost <= 5% over the raw pool at full size.
MAX_OVERHEAD_RATIO = 1.05
#: Quick-mode bar: tiny dispatches amortize nothing, CI runners are noisy.
MAX_OVERHEAD_RATIO_QUICK = 1.35

#: One kill must not double the fault-free wall time at full size.
MAX_KILL_SLOWDOWN = 2.0
#: Quick-mode bar: the (fixed-cost) pool rebuild is large relative to a
#: short fault-free run.
MAX_KILL_SLOWDOWN_QUICK = 3.5


def _xdist_guard():
    if os.environ.get("PYTEST_XDIST_WORKER"):
        pytest.skip("wall-clock ratios are meaningless under xdist")


def _bench_graph():
    graph = gen.relaxed_caveman_graph(NUM_CLIQUES, CLIQUE_SIZE, 0.15, seed=7)
    # Uneven degrees so the LPT chunk plan produces genuinely distinct
    # chunks (same topology family as the chaos battery, scaled up).
    for i in range(0, graph.num_vertices, 5):
        graph.add_edge(i, (i * 13 + 17) % graph.num_vertices)
    return graph


def _best_of(fn, reps):
    best = float("inf")
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_supervision_overhead_without_faults(monkeypatch):
    """Supervised vs raw pool on the identical warm bulk-pass workload."""
    _xdist_guard()
    graph = _bench_graph()
    max_ratio = MAX_OVERHEAD_RATIO_QUICK if QUICK else MAX_OVERHEAD_RATIO

    with ExecutionContext(graph, backend="csr", executor="process",
                          num_workers=2) as context:
        def measure(supervised):
            monkeypatch.setenv("KH_CORE_SUPERVISED",
                               "1" if supervised else "0")
            context.bulk_h_degrees(H)  # rebuild + warm the pool
            return _best_of(lambda: context.bulk_h_degrees(H),
                            OVERHEAD_REPS)

        raw_seconds, raw_degrees = measure(supervised=False)
        supervised_seconds, supervised_degrees = measure(supervised=True)

    assert supervised_degrees == raw_degrees
    ratio = supervised_seconds / raw_seconds
    write_bench_json(ARTIFACT, {"supervision_overhead": {
        "graph": f"relaxed_caveman({NUM_CLIQUES}, {CLIQUE_SIZE})",
        "num_vertices": graph.num_vertices,
        "h": H,
        "reps": OVERHEAD_REPS,
        "raw_seconds": raw_seconds,
        "supervised_seconds": supervised_seconds,
        "overhead_ratio": ratio,
        "max_ratio": max_ratio,
    }})
    assert ratio <= max_ratio, (
        f"supervised dispatch cost {ratio:.3f}x the raw pool "
        f"(bar {max_ratio}x)")


def test_one_kill_completes_within_budget():
    """SIGKILL one worker mid-run: bounded recovery, identical output."""
    _xdist_guard()
    graph = _bench_graph()
    max_slowdown = MAX_KILL_SLOWDOWN_QUICK if QUICK else MAX_KILL_SLOWDOWN

    def run():
        with ExecutionContext(graph, backend="csr", executor="process",
                              num_workers=2) as context:
            started = time.perf_counter()
            result = core_decomposition(graph, H, algorithm="h-BZ",
                                        context=context)
            seconds = time.perf_counter() - started
            report = context.resilience
        return seconds, result, report

    # Warm OS caches / import costs with a throwaway run, then measure.
    run()
    fault_free_seconds, expected, _ = run()
    with armed("worker.kill=1;seed=1"):
        killed_seconds, got, report = run()

    assert got.core_index == expected.core_index
    assert got.removal_order == expected.removal_order
    assert report is not None and report.pool_rebuilds >= 1
    slowdown = killed_seconds / fault_free_seconds
    write_bench_json(ARTIFACT, {"one_kill_completion": {
        "graph": f"relaxed_caveman({NUM_CLIQUES}, {CLIQUE_SIZE})",
        "num_vertices": graph.num_vertices,
        "h": H,
        "fault_free_seconds": fault_free_seconds,
        "one_kill_seconds": killed_seconds,
        "slowdown_ratio": slowdown,
        "max_ratio": max_slowdown,
        "pool_rebuilds": report.pool_rebuilds,
        "wasted_chunks": report.wasted_chunks,
    }})
    assert slowdown <= max_slowdown, (
        f"one-kill run took {slowdown:.2f}x fault-free "
        f"(bar {max_slowdown}x)")

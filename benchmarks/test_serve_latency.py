"""Benchmark: query latency of the resident (k,h)-core service under load.

Starts the full serving stack in-process (CoreService + CoreServer on an
ephemeral port) and drives it with the loadgen's LDBC-style request mix at
1, 4 and 8 concurrent clients.  For each client count the run records
p50/p99/mean/max latency per request class plus overall throughput into
``BENCH_PR6.json`` (via :func:`bench_utils.write_bench_json`, so CI uploads
it as an artifact).

Two claims are asserted, not assumed:

1. **Zero failed requests** at every concurrency level — faults under load
   are a correctness bug, not a perf footnote.
2. **The overall p99 stays bounded** (generous CI-shared-runner bound; the
   quick mode used by the CI smoke leg shrinks the request volume, not the
   bound).

Set ``KH_CORE_BENCH_QUICK=1`` to shrink the per-client request volume.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.graph.generators import road_network_graph
from repro.serve import CoreServer, CoreService
from repro.serve.loadgen import DEFAULT_MIX, run_load_async

from bench_utils import write_bench_json  # noqa: E402

ARTIFACT = "BENCH_PR6.json"
H = 2

QUICK = os.environ.get("KH_CORE_BENCH_QUICK", "") not in ("", "0")

#: Concurrency levels the artifact reports (the acceptance grid).
CLIENT_COUNTS = (1, 4, 8)
REQUESTS_PER_CLIENT = 40 if QUICK else 150

#: Generous p99 bound (ms) for shared CI runners; local runs sit far below.
MAX_P99_MS = 250.0


def _xdist_guard():
    if os.environ.get("PYTEST_XDIST_WORKER"):
        pytest.skip("latency percentiles are meaningless under xdist")


def benchmark_graph():
    side = 12 if QUICK else 20
    return road_network_graph(side, side, seed=0)


async def _run_grid():
    """One server, the full client grid against it, summaries per level."""
    service = CoreService(benchmark_graph(), h=H, name="bench")
    summaries = {}
    try:
        server = await CoreServer(service, port=0).start()
        try:
            for clients in CLIENT_COUNTS:
                summaries[clients] = await run_load_async(
                    "127.0.0.1",
                    server.port,
                    clients=clients,
                    requests_per_client=REQUESTS_PER_CLIENT,
                    mix=DEFAULT_MIX,
                    seed=clients,
                )
        finally:
            await server.aclose()
    finally:
        service.close()
    return summaries


def test_serve_latency_grid():
    """p50/p99 at 1/4/8 clients: zero errors, bounded p99, artifact out."""
    _xdist_guard()
    summaries = asyncio.run(_run_grid())

    graph = benchmark_graph()
    payload = {
        "serve_latency": {
            "graph": {
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "h": H,
            },
            "requests_per_client": REQUESTS_PER_CLIENT,
            "mix": {
                "point": DEFAULT_MIX.point,
                "community": DEFAULT_MIX.community,
                "analytics": DEFAULT_MIX.analytics,
                "update": DEFAULT_MIX.update,
            },
            "levels": {
                str(clients): summary
                for clients, summary in summaries.items()
            },
        }
    }
    path = write_bench_json(ARTIFACT, payload)

    for clients, summary in summaries.items():
        overall = summary["latency"]["overall"]
        print(
            f"\nclients={clients} requests={summary['requests']} "
            f"p50={overall['p50_ms']:.2f}ms p99={overall['p99_ms']:.2f}ms "
            f"throughput={summary['throughput_rps']:.0f}rps"
        )
        assert summary["errors"] == 0, summary["error_samples"]
        assert summary["requests"] == clients * REQUESTS_PER_CLIENT
        assert overall["p99_ms"] <= MAX_P99_MS, (
            f"p99 {overall['p99_ms']:.1f}ms at {clients} clients exceeds "
            f"the {MAX_P99_MS:.0f}ms bound (artifact at {path})"
        )
        # The write share of the mix really committed epochs.
        assert summary["generations"]["max"] > 1

"""Benchmark: Figure 6 — scatter of core indices, h = 1 vs h = 2..5."""

from bench_utils import run_once

from repro.experiments import figure6_core_scatter
from repro.experiments.common import ExperimentConfig


def test_figure6_regeneration(benchmark):
    config = ExperimentConfig(scale="tiny", datasets=("caAs",))
    rows = run_once(benchmark, figure6_core_scatter.run, config)
    assert len(rows) == 4
    assert all(-1.0 <= row["pearson"] <= 1.0 for row in rows)


def test_figure6_with_points(tiny_config):
    """Not a timing benchmark: the raw scatter points are produced on demand."""
    config = ExperimentConfig(scale="tiny", datasets=("caAs",))
    rows = figure6_core_scatter.run(config, return_points=True)
    assert all("points" in row and row["points"] for row in rows)

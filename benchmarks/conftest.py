"""Shared fixtures for the benchmark suite.

Every benchmark regenerates (a tiny-scale version of) one of the paper's
tables or figures.  The heavy experiment drivers are run once per benchmark
(``rounds=1``) — the interesting output is the table itself, recorded in
EXPERIMENTS.md by the standalone runner — while the per-algorithm kernels use
pytest-benchmark's normal calibration so their relative cost (h-BZ vs h-LB vs
h-LB+UB) is measured meaningfully.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.experiments.common import ExperimentConfig


@pytest.fixture(scope="session")
def tiny_config() -> ExperimentConfig:
    """Configuration used by the table/figure regeneration benchmarks."""
    return ExperimentConfig(scale="tiny", seed=0, h_values=(2, 3),
                            num_landmarks=5, num_query_pairs=25,
                            hclub_time_budget_seconds=10.0)


@pytest.fixture(scope="session")
def collaboration_graph():
    """caHe stand-in at tiny scale (dense-ish collaboration network)."""
    return load_dataset("caHe", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def social_graph():
    """FBco stand-in at tiny scale (social network)."""
    return load_dataset("FBco", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def road_graph():
    """rnPA stand-in at tiny scale (road network)."""
    return load_dataset("rnPA", scale="tiny", seed=0)

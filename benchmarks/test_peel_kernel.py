"""Benchmark: array-native peel kernel vs dict peel state (CSR backend).

The execution runtime selects a peel-state layout per engine
(:mod:`repro.runtime.peel`): flat ``array('q')`` / intrusive-linked-list
buckets on CSR, hash-based dicts otherwise.  Both layouts execute the *same*
operation sequence — identical traversals, removal orders and counter totals
(asserted in ``tests/test_peel_state.py``) — so the ratio measured here is a
pure data-structure effect.

Two claims are asserted, not assumed:

1. **h-LB+UB end to end is >= 1.5x faster with the array peel state than
   with the dict peel state on the CSR backend** for the hub-dominated
   workload (the star family).  Hub peeling is where the peel state
   *dominates* runtime: removing any vertex touches the hub's whole
   h-ball, so per removal the algorithm performs Θ(|ball|) O(1) decrement
   + bucket-move updates against a BFS that scans only Θ(|ball|) adjacency
   entries — bookkeeping and traversal are the same order, and the dict
   path additionally materializes a ``(vertex, distance)`` tuple per
   neighbor.  Flat-array state turns every one of those updates into a
   handful of integer stores.
2. **The array peel state is never meaningfully slower** on
   locally-sparse topologies (ring lattice, preferential-attachment
   tree), where h-bounded BFS — identical in both configurations since
   the backend PR moved it to flat arrays — dominates and the peel state
   is a second-order cost.  These rows are reported for visibility; the
   guard only catches the array path regressing *below* the dict twin.

Set ``KH_CORE_BENCH_QUICK=1`` (the CI smoke mode) to shrink the graphs.
The quick-mode bar for claim 1 is relaxed (see ``REQUIRED_SPEEDUP_QUICK``):
at small n the fixed costs shared by both layouts (bulk pass, LB2,
snapshotting) dilute the peel phase, and shared CI runners add wall-clock
noise; locally the quick configuration still measures ~1.5x.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import h_lb_ub
from repro.graph.generators import (
    barabasi_albert_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.runtime import ExecutionContext

H = 2

QUICK = os.environ.get("KH_CORE_BENCH_QUICK", "") not in ("", "0")

#: Leaves of the hub-dominated benchmark star.
STAR_SIZE = 700 if QUICK else 1500

#: Required array-over-dict speedup for h-LB+UB on the star workload.
REQUIRED_SPEEDUP = 1.5
#: Quick-mode bar: small-n fixed overheads dilute the peel phase and CI
#: runners are noisy; the full-size bar is enforced in the non-quick run.
REQUIRED_SPEEDUP_QUICK = 1.2

#: Locally-sparse visibility battery: BFS-bound, peel state second-order.
SPARSE_BATTERY = [
    ("WS ring(800, k=4)",
     lambda: watts_strogatz_graph(800, 4, 0.02, seed=0), 2),
    ("BA tree(1200, m=1)",
     lambda: barabasi_albert_graph(1200, 1, seed=0), 2),
]

#: The sparse battery guard: array must not regress below the dict twin
#: by more than timer noise.
MAX_SPARSE_SLOWDOWN = 1.25


def _run_once(graph, h, peel: str):
    """One timed h-LB+UB run under ``peel``; returns (seconds, result)."""
    with ExecutionContext(graph, backend="csr", peel=peel) as context:
        start = time.perf_counter()
        result = h_lb_ub(graph, h, context=context)
        return time.perf_counter() - start, result


def _timed(graph, h, peel: str, repeats: int = 2):
    """Best-of-``repeats`` wall time (and result) of h-LB+UB under ``peel``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        seconds, result = _run_once(graph, h, peel)
        best = min(best, seconds)
    return best, result


def _timed_interleaved(graph, h, repeats: int = 3):
    """Best-of-``repeats`` for both layouts, rounds interleaved.

    Alternating array/dict within each round means slow drifting load on a
    shared runner (the usual CI noise) hits both layouts alike instead of
    biasing whichever happened to run second.
    """
    best = {"array": float("inf"), "dict": float("inf")}
    results = {}
    for _ in range(repeats):
        for peel in ("array", "dict"):
            seconds, results[peel] = _run_once(graph, h, peel)
            best[peel] = min(best[peel], seconds)
    return best, results


def test_array_peel_speedup_on_hub_workload():
    """h-LB+UB on the star: array peel state must be >= 1.5x the dict state."""
    if os.environ.get("PYTEST_XDIST_WORKER"):
        pytest.skip("wall-clock speedups are meaningless under xdist")
    graph = star_graph(STAR_SIZE)
    # Warm both paths once (allocation, branch caches) before timing.
    _run_once(graph, H, "array")
    _run_once(graph, H, "dict")
    best, results = _timed_interleaved(graph, H)
    array_seconds, array_result = best["array"], results["array"]
    dict_seconds, dict_result = best["dict"], results["dict"]
    assert array_result.core_index == dict_result.core_index
    speedup = dict_seconds / array_seconds if array_seconds else float("inf")
    required = REQUIRED_SPEEDUP_QUICK if QUICK else REQUIRED_SPEEDUP
    print(f"\nstar({STAR_SIZE}) h={H}: dict={dict_seconds:.3f}s "
          f"array={array_seconds:.3f}s speedup={speedup:.2f}x "
          f"(required: {required}x{' quick' if QUICK else ''})")
    assert speedup >= required, (
        f"array peel kernel speedup degraded to {speedup:.2f}x on "
        f"star({STAR_SIZE}) (required >= {required}x)"
    )


@pytest.mark.parametrize("name,builder,h", SPARSE_BATTERY,
                         ids=[name for name, _, _ in SPARSE_BATTERY])
def test_array_peel_not_slower_on_sparse_workloads(name, builder, h):
    """BFS-bound graphs: identical cores, array at worst on par with dict."""
    if os.environ.get("PYTEST_XDIST_WORKER"):
        pytest.skip("wall-clock ratios are meaningless under xdist")
    graph = builder()
    _timed(graph, h, "array", repeats=1)
    array_seconds, array_result = _timed(graph, h, "array")
    dict_seconds, dict_result = _timed(graph, h, "dict")
    assert array_result.core_index == dict_result.core_index
    ratio = dict_seconds / array_seconds if array_seconds else float("inf")
    print(f"\n{name} h={h}: |V|={graph.num_vertices} "
          f"dict={dict_seconds:.3f}s array={array_seconds:.3f}s "
          f"speedup={ratio:.2f}x (visibility row)")
    assert array_seconds < dict_seconds * MAX_SPARSE_SLOWDOWN, (
        f"array peel state regressed below the dict twin on {name}: "
        f"array={array_seconds:.3f}s dict={dict_seconds:.3f}s"
    )

"""Benchmark: dynamic (k,h)-core maintenance vs from-scratch recomputation.

Three claims are asserted, not assumed:

1. **Single-edge incremental updates are >= 5x faster than a full
   recomputation** on the benchmark graph.  Deletions are the
   demonstration workload: their dirty regions are provably local (a fall
   always chain-links back to the deleted edge), so the re-peel touches a
   few dozen vertices of a ~1.6k-vertex graph.
2. **A 1k-update mixed insert/delete stream, applied in batches, beats
   recompute-after-every-update by >= 5x** end to end — the streaming
   workload the engine exists for.
3. **The fallback path triggers on large dirty regions** (an insertion's
   rise-closure flooding a locally homogeneous graph; a deletion whose seed
   region is the whole graph) and stays exact.

The benchmark graph is a perturbed grid (road-network stand-in): bounded
h-neighborhoods make locality visible, and |V| is large enough that a full
recomputation costs tens of milliseconds.  Set ``KH_CORE_BENCH_QUICK=1``
(the CI smoke mode) to shrink the graph and the stream.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.core import core_decomposition
from repro.dynamic import MODE_INCREMENTAL, DynamicKHCore, random_update_stream
from repro.graph.generators import complete_graph, road_network_graph

H = 2

QUICK = os.environ.get("KH_CORE_BENCH_QUICK", "") not in ("", "0")

#: Grid side of the benchmark graph and length of the replayed stream.
GRID_SIDE = 28 if QUICK else 40
STREAM_LENGTH = 200 if QUICK else 1000
BATCH_SIZE = 32

#: Required speedups (generous: locally measured margins are >= 5x these).
REQUIRED_SINGLE_UPDATE_SPEEDUP = 5.0
REQUIRED_STREAM_SPEEDUP = 5.0


def benchmark_graph():
    return road_network_graph(GRID_SIDE, GRID_SIDE, seed=0)


def _full_seconds(graph) -> float:
    """Best-of-two from-scratch decompositions (shaves scheduler noise)."""
    best = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        core_decomposition(graph, H)
        best = min(best, time.perf_counter() - start)
    return best


def test_single_edge_updates_beat_full_recomputation():
    """Median incremental single-edge update must be >= 5x faster."""
    graph = benchmark_graph()
    full_seconds = _full_seconds(graph)

    engine = DynamicKHCore(graph.copy(), h=H)
    deletions = random_update_stream(graph, 30, insert_fraction=0.0, seed=1)
    durations = []
    modes = []
    for update in deletions:
        start = time.perf_counter()
        summary = engine.apply(*update)
        durations.append(time.perf_counter() - start)
        modes.append(summary.mode)

    median_update = statistics.median(durations)
    speedup = full_seconds / median_update if median_update else float("inf")
    print(f"\n|V|={graph.num_vertices} |E|={graph.num_edges} "
          f"full={full_seconds * 1000:.1f}ms "
          f"median-update={median_update * 1000:.2f}ms "
          f"speedup={speedup:.1f}x "
          f"(required: {REQUIRED_SINGLE_UPDATE_SPEEDUP}x) "
          f"peak-universe={engine.stats.peak_universe_size}")

    # The updates must actually exercise the incremental path, and its
    # result must be exact.
    assert modes.count(MODE_INCREMENTAL) > len(modes) // 2
    assert engine.core_numbers() == core_decomposition(engine.graph,
                                                       H).core_index
    assert speedup >= REQUIRED_SINGLE_UPDATE_SPEEDUP, (
        f"incremental single-edge updates degraded to {speedup:.1f}x over "
        f"full recomputation (required >= {REQUIRED_SINGLE_UPDATE_SPEEDUP}x)"
    )


def test_update_stream_beats_recompute_per_update():
    """Batched replay of the update stream must be >= 5x faster end to end."""
    graph = benchmark_graph()
    full_seconds = _full_seconds(graph)
    updates = random_update_stream(graph, STREAM_LENGTH, seed=2)
    baseline = full_seconds * len(updates)

    engine = DynamicKHCore(graph.copy(), h=H)
    start = time.perf_counter()
    for offset in range(0, len(updates), BATCH_SIZE):
        engine.apply_batch(updates[offset:offset + BATCH_SIZE])
    elapsed = time.perf_counter() - start

    stats = engine.stats
    speedup = baseline / elapsed if elapsed else float("inf")
    print(f"\nstream: {len(updates)} updates in batches of {BATCH_SIZE}: "
          f"{elapsed:.2f}s vs recompute-per-update {baseline:.2f}s "
          f"=> {speedup:.1f}x (required: {REQUIRED_STREAM_SPEEDUP}x); "
          f"{stats.incremental_repeels} incremental / "
          f"{stats.full_recomputes} full batches")

    assert engine.core_numbers() == core_decomposition(engine.graph,
                                                       H).core_index
    assert speedup >= REQUIRED_STREAM_SPEEDUP, (
        f"stream replay degraded to {speedup:.1f}x over per-update "
        f"recomputation (required >= {REQUIRED_STREAM_SPEEDUP}x)"
    )


def test_fallback_triggers_on_large_dirty_regions():
    """Both fallback causes fire on realistic inputs — and stay exact."""
    # Cause 1: an insertion's rise closure floods the locally homogeneous
    # grid (no vertex is saturated, so no local certificate can refute a
    # distant rise) and exceeds the region threshold.
    graph = benchmark_graph()
    engine = DynamicKHCore(graph.copy(), h=H)
    corner_a = 0
    corner_b = graph.num_vertices - 1
    summary = engine.insert_edge(corner_a, corner_b)
    assert summary.mode == "full"
    assert engine.stats.full_recomputes == 1
    assert engine.core_numbers() == core_decomposition(engine.graph,
                                                       H).core_index

    # Cause 2: in a complete graph the seed region alone is the whole
    # vertex set, so even a deletion falls back under the default policy.
    dense = DynamicKHCore(complete_graph(40), h=H)
    summary = dense.delete_edge(0, 1)
    assert summary.mode == "full"
    assert dense.stats.full_recomputes == 1
    assert dense.core_numbers() == core_decomposition(dense.graph,
                                                      H).core_index

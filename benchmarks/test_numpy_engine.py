"""Benchmark: vectorized NumPy engine vs the serial CSR engine (bulk pass).

The numpy engine replaces the interpreted per-source h-BFS of the bulk
h-degree pass with two vectorized kernels — a stamped level-synchronous
frontier kernel and a bit-parallel dense sweep, auto-selected per call from
a sampled candidate-volume probe (:mod:`repro.traversal.numpy_bfs`).  Both
kernels produce exactly the h-degrees of the interpreted engines (asserted
here per workload, exhaustively in ``tests/test_numpy_engine.py``), so the
ratios below are pure kernel effects.

Three claims are asserted, not assumed:

1. **>= 3x on the bulk h-degree pass for two workloads** where the h-balls
   are dense enough for the bit-parallel sweep: the hub-dominated star
   (every leaf's h-ball is the whole graph; measured ~20-30x) and the
   power-law-cluster family at h=3 (hub-coupled balls; measured ~10-25x).
2. **The cache-locality BFS relabeling alone wins on the hub-dominated
   preferential-attachment workload** — same interpreted CSR engine, same
   arrays, only the vertex enumeration order changes, clustering each
   hub's neighborhood into adjacent indices (measured ~1.1-1.3x at full
   size; at quick size the working set fits cache and the guard is
   not-slower).
3. **Never meaningfully slower**: on frontier-kernel workloads (sparse
   meshes, small-world graphs at h=2) the numpy engine must stay ahead of
   the CSR engine, not just on the dense-sweep showcases.

Every row also lands in the machine-readable ``BENCH_PR5.json`` artifact
(:func:`bench_utils.write_bench_json`) together with an engine × executor
matrix, seeding the perf trajectory for later PRs.

Set ``KH_CORE_BENCH_QUICK=1`` (the CI smoke mode) to shrink the graphs.
"""

from __future__ import annotations

import os
import time

import pytest

np = pytest.importorskip("numpy")

from bench_utils import write_bench_json  # noqa: E402

from repro.core.backends import (  # noqa: E402
    CSREngine,
    numpy_available,
    resolve_engine,
)

if not numpy_available():
    # Importable but disabled (KH_CORE_DISABLE_NUMPY): nothing to measure.
    pytest.skip("NumPy engine disabled", allow_module_level=True)
from repro.graph.generators import (  # noqa: E402
    barabasi_albert_graph,
    grid_graph,
    powerlaw_cluster_graph,
    star_graph,
    watts_strogatz_graph,
)

QUICK = os.environ.get("KH_CORE_BENCH_QUICK", "") not in ("", "0")

#: Required numpy-over-CSR speedup on the bulk pass (both modes: the
#: dense-sweep margin is an order of magnitude, so quick mode keeps the bar).
REQUIRED_SPEEDUP = 3.0

#: The two asserted workloads: (name, graph builder, h).
SPEEDUP_BATTERY = [
    ("star hub", lambda: star_graph(1200 if QUICK else 3500), 2),
    ("powerlaw-cluster h3",
     lambda: powerlaw_cluster_graph(2500 if QUICK else 8000, 5, 0.5, seed=0),
     3),
]

#: Frontier-kernel visibility rows: numpy must not regress below CSR.
SPARSE_BATTERY = [
    ("WS ring", lambda: watts_strogatz_graph(3000 if QUICK else 12000, 8,
                                             0.05, seed=0), 2),
    ("grid h3", lambda: grid_graph(*(2 * (40 if QUICK else 110,))), 3),
]

#: Hub-dominated relabeling workload (claim 2).
RELABEL_SIZE = 10000 if QUICK else 30000
#: Full-size bar for the relabeling win; quick mode only guards
#: "not slower" because the quick working set is cache-resident anyway.
RELABEL_REQUIRED = 0.95 if QUICK else 1.02

#: The benchmark artifact (uploaded by CI; see bench_utils for the dir).
ARTIFACT = "BENCH_PR5.json"


def _xdist_guard():
    if os.environ.get("PYTEST_XDIST_WORKER"):
        pytest.skip("wall-clock speedups are meaningless under xdist")


def _interleaved_bulk(engines, h, rounds=3):
    """Best-of-``rounds`` bulk-pass seconds per engine, rounds interleaved.

    Interleaving means slow drift on a shared runner hits every engine
    alike instead of biasing whichever ran last.
    """
    best = [float("inf")] * len(engines)
    for _ in range(rounds):
        for i, engine in enumerate(engines):
            start = time.perf_counter()
            engine.bulk_h_degrees(h, executor="serial")
            best[i] = min(best[i], time.perf_counter() - start)
    return best


@pytest.mark.parametrize("name,builder,h", SPEEDUP_BATTERY,
                         ids=[name for name, _, _ in SPEEDUP_BATTERY])
def test_numpy_speedup_on_bulk_pass(name, builder, h):
    """Bulk h-degree pass: numpy engine >= 3x over the serial CSR engine."""
    _xdist_guard()
    graph = builder()
    csr = CSREngine(graph)
    vec = resolve_engine(graph, "numpy")
    expected = csr.bulk_h_degrees(h, executor="serial")
    got = vec.bulk_h_degrees(h, executor="serial")
    assert got == expected  # identical h-degrees, not just close
    csr_seconds, numpy_seconds = _interleaved_bulk([csr, vec], h)
    speedup = (csr_seconds / numpy_seconds if numpy_seconds
               else float("inf"))
    print(f"\n{name}: |V|={graph.num_vertices} |E|={graph.num_edges} h={h} "
          f"csr={csr_seconds:.3f}s numpy={numpy_seconds:.4f}s "
          f"speedup={speedup:.2f}x (required: {REQUIRED_SPEEDUP}x)")
    write_bench_json(ARTIFACT, {f"bulk_pass/{name}": {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "h": h,
        "csr_seconds": round(csr_seconds, 5),
        "numpy_seconds": round(numpy_seconds, 5),
        "speedup": round(speedup, 2),
        "required": REQUIRED_SPEEDUP,
    }})
    assert speedup >= REQUIRED_SPEEDUP, (
        f"numpy bulk-pass speedup degraded to {speedup:.2f}x on {name} "
        f"(required >= {REQUIRED_SPEEDUP}x)"
    )


@pytest.mark.parametrize("name,builder,h", SPARSE_BATTERY,
                         ids=[name for name, _, _ in SPARSE_BATTERY])
def test_numpy_not_slower_on_frontier_workloads(name, builder, h):
    """Frontier-kernel territory: identical degrees, numpy at least on par."""
    _xdist_guard()
    graph = builder()
    csr = CSREngine(graph)
    vec = resolve_engine(graph, "numpy")
    assert (vec.bulk_h_degrees(h, executor="serial")
            == csr.bulk_h_degrees(h, executor="serial"))
    csr_seconds, numpy_seconds = _interleaved_bulk([csr, vec], h)
    ratio = csr_seconds / numpy_seconds if numpy_seconds else float("inf")
    print(f"\n{name}: |V|={graph.num_vertices} h={h} csr={csr_seconds:.3f}s "
          f"numpy={numpy_seconds:.4f}s speedup={ratio:.2f}x "
          f"(visibility row)")
    write_bench_json(ARTIFACT, {f"frontier/{name}": {
        "vertices": graph.num_vertices,
        "h": h,
        "csr_seconds": round(csr_seconds, 5),
        "numpy_seconds": round(numpy_seconds, 5),
        "speedup": round(ratio, 2),
    }})
    # Guard against regressing below the interpreted loop, not timer noise.
    assert numpy_seconds < csr_seconds * 1.25, (
        f"numpy engine regressed below the CSR engine on {name}: "
        f"numpy={numpy_seconds:.3f}s csr={csr_seconds:.3f}s"
    )


def test_relabel_win_on_hub_workload():
    """BFS relabeling alone speeds the CSR bulk pass on the BA hub graph."""
    _xdist_guard()
    graph = barabasi_albert_graph(RELABEL_SIZE, 3, seed=0)
    plain = CSREngine(graph)
    relabeled = CSREngine(graph, relabel="bfs")
    # Same label-space h-degrees regardless of the internal index order.
    assert (relabeled.to_labels(relabeled.bulk_h_degrees(2,
                                                         executor="serial"))
            == plain.to_labels(plain.bulk_h_degrees(2, executor="serial")))
    plain_seconds, relabeled_seconds = _interleaved_bulk(
        [plain, relabeled], 2, rounds=4)
    win = (plain_seconds / relabeled_seconds if relabeled_seconds
           else float("inf"))
    print(f"\nBA({RELABEL_SIZE}, 3) h=2 csr: none={plain_seconds:.3f}s "
          f"bfs-relabel={relabeled_seconds:.3f}s win={win:.2f}x "
          f"(required: {RELABEL_REQUIRED}x{' quick' if QUICK else ''})")
    write_bench_json(ARTIFACT, {"relabel/BA hub": {
        "vertices": graph.num_vertices,
        "h": 2,
        "plain_seconds": round(plain_seconds, 5),
        "relabeled_seconds": round(relabeled_seconds, 5),
        "win": round(win, 2),
        "required": RELABEL_REQUIRED,
    }})
    assert win >= RELABEL_REQUIRED, (
        f"bfs relabeling win degraded to {win:.2f}x on "
        f"BA({RELABEL_SIZE}, 3) (required >= {RELABEL_REQUIRED}x)"
    )


def test_engine_executor_matrix_artifact():
    """Record the engine × executor grid (identical results, timed rows)."""
    graph = barabasi_albert_graph(1500 if QUICK else 4000, 3, seed=0)
    h = 2
    reference = None
    matrix = {}
    for backend in ("dict", "csr", "numpy"):
        engine = resolve_engine(graph, backend)
        try:
            for executor in ("serial", "thread"):
                start = time.perf_counter()
                degrees = engine.bulk_h_degrees(h, executor=executor,
                                                num_workers=2)
                seconds = time.perf_counter() - start
                labeled = engine.to_labels(degrees)
                if reference is None:
                    reference = labeled
                assert labeled == reference, (backend, executor)
                matrix[f"{backend}/{executor}"] = round(seconds, 5)
        finally:
            close = getattr(engine, "close", None)
            if close is not None:
                close()
    path = write_bench_json(ARTIFACT, {"matrix": {
        "vertices": graph.num_vertices,
        "h": h,
        "seconds": matrix,
    }})
    assert os.path.exists(path)

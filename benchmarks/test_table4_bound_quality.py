"""Benchmark: Table 4 — quality of the lower/upper bounds."""

from bench_utils import run_once

from repro.core import lower_bound_lb2, upper_bound
from repro.experiments import table4_bounds
from repro.experiments.common import ExperimentConfig


def test_table4_regeneration(benchmark):
    config = ExperimentConfig(scale="tiny", h_values=(2,),
                              datasets=("caHe", "rnPA"))
    rows = run_once(benchmark, table4_bounds.run, config)
    assert len(rows) == 2
    for row in rows:
        assert row["LB2 err"] <= row["LB1 err"] + 1e-9
        assert row["UB err"] <= row["h-degree err"] + 1e-9


def test_lb2_kernel(benchmark, collaboration_graph):
    bounds = benchmark(lower_bound_lb2, collaboration_graph, 2)
    assert len(bounds) == collaboration_graph.num_vertices


def test_upper_bound_kernel(benchmark, collaboration_graph):
    bounds = benchmark(upper_bound, collaboration_graph, 2)
    assert len(bounds) == collaboration_graph.num_vertices

"""Benchmark: Table 7 — landmark selection for distance estimation."""

from bench_utils import run_once

from repro.applications.landmarks import LandmarkOracle, evaluate_landmarks, select_landmarks
from repro.experiments import table7_landmarks
from repro.experiments.common import ExperimentConfig


def test_table7_regeneration(benchmark):
    config = ExperimentConfig(scale="tiny", datasets=("caHe", "doub"),
                              num_landmarks=5, num_query_pairs=20)
    rows = run_once(benchmark, table7_landmarks.run, config)
    strategies = {row["strategy"] for row in rows}
    assert "closeness" in strategies and "max core h=4" in strategies


def test_max_core_selection_kernel(benchmark, social_graph):
    landmarks = benchmark(select_landmarks, social_graph, 5, "max-core", 3, 0)
    assert len(landmarks) == 5


def test_oracle_construction_kernel(benchmark, social_graph):
    landmarks = select_landmarks(social_graph, 5, strategy="closeness")
    oracle = benchmark(LandmarkOracle, social_graph, landmarks)
    assert oracle.landmarks == landmarks


def test_evaluation_kernel(benchmark, social_graph):
    landmarks = select_landmarks(social_graph, 5, strategy="max-core", h=3, seed=0)
    evaluation = benchmark(evaluate_landmarks, social_graph, landmarks, 25, 1)
    assert evaluation.num_pairs > 0

"""Benchmark: compiled native engine — frontier speedups and thread scaling.

BENCH_PR5 left two residuals on the table: the numpy engine's win collapsed
to ~2.4-2.8x on *frontier-bound* workloads (per-level dispatch overhead),
and the engine x executor matrix showed the thread executor adding nothing
anywhere (every kernel held the GIL).  The native engine's Numba kernels
attack both at once — the whole h-bounded BFS is one compiled call, and
``nogil=True`` makes thread workers genuinely concurrent.  This module
asserts both effects, with bit-identical results checked per row:

1. **>= 10x over the interpreted CSR engine on the frontier workloads**
   (WS ring at h=2, grid mesh at h=3) — exactly the rows where the numpy
   engine plateaued.
2. **>= 1.5x thread scaling at 4 workers** on the native bulk pass
   (skipped below 4 cores) — the first engine for which ``executor=
   "thread"`` beats serial at all.
3. **The interpreted engines don't regress on the thread path**: csr and
   numpy thread cells stay within noise of their serial cells (the
   BENCH_PR5 matrix regression guard).

Timings are steady-state by construction: :class:`NativeEngine` pre-warms
the kernels when it is built (satellite of the same PR), so no measured
row ever includes JIT compilation — the artifact records the one-off
construction cost separately.

Every row lands in ``BENCH_PR9.json``.  When Numba is absent the module
skips but still writes a skip-marker entry, so the artifact always exists
and CI legs can tell "not run here" from "silently lost".

Set ``KH_CORE_BENCH_QUICK=1`` (the CI smoke mode) to shrink the graphs.
"""

from __future__ import annotations

import os
import time

import pytest

from bench_utils import write_bench_json

from repro.core.backends import native_available, resolve_engine

#: The benchmark artifact (uploaded by CI; see bench_utils for the dir).
ARTIFACT = "BENCH_PR9.json"


def _numba_compiled() -> bool:
    try:
        from repro.traversal.native_bfs import NUMBA_AVAILABLE

        return NUMBA_AVAILABLE
    except ImportError:  # numpy itself absent
        return False


if not (native_available() and _numba_compiled()):
    # Interpreted-fallback timings would be meaningless; mark and bow out.
    write_bench_json(ARTIFACT, {"native": {
        "skipped": True,
        "reason": "numba unavailable or native engine disabled",
    }})
    pytest.skip("native engine unavailable (numba missing or disabled)",
                allow_module_level=True)

from repro.core.backends import CSREngine, NativeEngine  # noqa: E402
from repro.graph.generators import (  # noqa: E402
    barabasi_albert_graph,
    grid_graph,
    watts_strogatz_graph,
)

QUICK = os.environ.get("KH_CORE_BENCH_QUICK", "") not in ("", "0")

#: Required native-over-interpreted-CSR speedup on the frontier battery.
REQUIRED_SPEEDUP = 10.0

#: Required native thread-over-serial scaling at 4 workers.
REQUIRED_THREAD_SCALING = 1.5

#: The frontier workloads where the numpy engine plateaued: (name, builder,
#: h).  Same families and sizes as BENCH_PR5's visibility rows, so the two
#: artifacts read as one trajectory.
FRONTIER_BATTERY = [
    ("WS ring", lambda: watts_strogatz_graph(3000 if QUICK else 12000, 8,
                                             0.05, seed=0), 2),
    ("grid h3", lambda: grid_graph(*(2 * (40 if QUICK else 110,))), 3),
]


def _xdist_guard():
    if os.environ.get("PYTEST_XDIST_WORKER"):
        pytest.skip("wall-clock speedups are meaningless under xdist")


def _interleaved_bulk(engines, h, rounds=3, executor="serial", workers=1):
    """Best-of-``rounds`` bulk-pass seconds per engine, rounds interleaved.

    Interleaving means slow drift on a shared runner hits every engine
    alike instead of biasing whichever ran last.
    """
    best = [float("inf")] * len(engines)
    for _ in range(rounds):
        for i, engine in enumerate(engines):
            start = time.perf_counter()
            engine.bulk_h_degrees(h, executor=executor, num_workers=workers)
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def _interleaved_cells(engine, h, cells, rounds=3):
    """Best-of-``rounds`` seconds per (executor, workers) cell, interleaved."""
    best = [float("inf")] * len(cells)
    for _ in range(rounds):
        for i, (executor, workers) in enumerate(cells):
            start = time.perf_counter()
            engine.bulk_h_degrees(h, executor=executor, num_workers=workers)
            best[i] = min(best[i], time.perf_counter() - start)
    return best


@pytest.mark.parametrize("name,builder,h", FRONTIER_BATTERY,
                         ids=[name for name, _, _ in FRONTIER_BATTERY])
def test_native_speedup_on_frontier_workloads(name, builder, h):
    """Frontier bulk pass: native >= 10x over the serial CSR engine."""
    _xdist_guard()
    graph = builder()
    csr = CSREngine(graph)
    compiled = NativeEngine(graph)  # construction pre-warms the kernels
    expected = csr.bulk_h_degrees(h, executor="serial")
    got = compiled.bulk_h_degrees(h, executor="serial")
    assert got == expected  # identical h-degrees, not just close
    csr_seconds, native_seconds = _interleaved_bulk([csr, compiled], h)
    speedup = (csr_seconds / native_seconds if native_seconds
               else float("inf"))
    print(f"\n{name}: |V|={graph.num_vertices} |E|={graph.num_edges} h={h} "
          f"csr={csr_seconds:.3f}s native={native_seconds:.4f}s "
          f"speedup={speedup:.2f}x (required: {REQUIRED_SPEEDUP}x)")
    write_bench_json(ARTIFACT, {f"frontier/{name}": {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "h": h,
        "csr_seconds": round(csr_seconds, 5),
        "native_seconds": round(native_seconds, 5),
        "speedup": round(speedup, 2),
        "required": REQUIRED_SPEEDUP,
    }})
    assert speedup >= REQUIRED_SPEEDUP, (
        f"native frontier speedup degraded to {speedup:.2f}x on {name} "
        f"(required >= {REQUIRED_SPEEDUP}x)"
    )


def test_native_thread_scaling_at_four_workers():
    """The GIL-free bulk pass: 4 thread workers >= 1.5x over serial."""
    _xdist_guard()
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"thread scaling needs >= 4 cores (have {cores})")
    graph = watts_strogatz_graph(6000 if QUICK else 20000, 10, 0.05, seed=1)
    h = 2
    compiled = NativeEngine(graph)
    serial = compiled.bulk_h_degrees(h, executor="serial")
    threaded = compiled.bulk_h_degrees(h, executor="thread", num_workers=4)
    assert threaded == serial  # concurrency must not change one degree
    serial_seconds, thread_seconds = _interleaved_cells(
        compiled, h, [("serial", 1), ("thread", 4)], rounds=4)
    scaling = (serial_seconds / thread_seconds if thread_seconds
               else float("inf"))
    print(f"\nWS thread scaling: |V|={graph.num_vertices} h={h} "
          f"serial={serial_seconds:.3f}s thread(4)={thread_seconds:.3f}s "
          f"scaling={scaling:.2f}x (required: {REQUIRED_THREAD_SCALING}x)")
    write_bench_json(ARTIFACT, {"thread_scaling/WS": {
        "vertices": graph.num_vertices,
        "h": h,
        "workers": 4,
        "cores": cores,
        "serial_seconds": round(serial_seconds, 5),
        "thread_seconds": round(thread_seconds, 5),
        "scaling": round(scaling, 2),
        "required": REQUIRED_THREAD_SCALING,
    }})
    assert scaling >= REQUIRED_THREAD_SCALING, (
        f"native thread scaling degraded to {scaling:.2f}x at 4 workers "
        f"(required >= {REQUIRED_THREAD_SCALING}x)"
    )


@pytest.mark.parametrize("backend", ["csr", "numpy"])
def test_interpreted_thread_path_no_worse_than_serial(backend):
    """BENCH_PR5 matrix guard: thread cells stay within noise of serial."""
    _xdist_guard()
    graph = barabasi_albert_graph(1500 if QUICK else 4000, 3, seed=0)
    engine = resolve_engine(graph, backend)
    h = 2
    assert (engine.bulk_h_degrees(h, executor="thread", num_workers=2)
            == engine.bulk_h_degrees(h, executor="serial"))
    serial_seconds, thread_seconds = _interleaved_cells(
        engine, h, [("serial", 1), ("thread", 2)], rounds=4)
    ratio = thread_seconds / serial_seconds if serial_seconds else 1.0
    print(f"\n{backend} thread guard: serial={serial_seconds:.3f}s "
          f"thread(2)={thread_seconds:.3f}s ratio={ratio:.2f} "
          f"(must stay < 1.5)")
    write_bench_json(ARTIFACT, {f"thread_guard/{backend}": {
        "vertices": graph.num_vertices,
        "h": h,
        "serial_seconds": round(serial_seconds, 5),
        "thread_seconds": round(thread_seconds, 5),
        "ratio": round(ratio, 2),
    }})
    # GIL-bound engines gain nothing from threads, but they must not *lose*
    # beyond scheduling noise either — that would regress the historical
    # matrix.
    assert thread_seconds < serial_seconds * 1.5, (
        f"{backend} thread path regressed to {ratio:.2f}x of serial"
    )


def test_engine_executor_matrix_artifact():
    """Record the four-engine x executor grid (identical results, timed)."""
    graph = barabasi_albert_graph(1500 if QUICK else 4000, 3, seed=0)
    h = 2
    reference = None
    matrix = {}
    start = time.perf_counter()
    warm_engine = NativeEngine(graph)
    construction_seconds = time.perf_counter() - start
    warm_engine.close()
    for backend in ("dict", "csr", "numpy", "native"):
        engine = resolve_engine(graph, backend)
        try:
            for executor, workers in (("serial", 1), ("thread", 2),
                                      ("thread", 4)):
                start = time.perf_counter()
                degrees = engine.bulk_h_degrees(h, executor=executor,
                                                num_workers=workers)
                seconds = time.perf_counter() - start
                labeled = engine.to_labels(degrees)
                if reference is None:
                    reference = labeled
                assert labeled == reference, (backend, executor, workers)
                matrix[f"{backend}/{executor}-{workers}"] = round(seconds, 5)
        finally:
            close = getattr(engine, "close", None)
            if close is not None:
                close()
    path = write_bench_json(ARTIFACT, {"matrix": {
        "vertices": graph.num_vertices,
        "h": h,
        "cores": os.cpu_count() or 1,
        "warm_construction_seconds": round(construction_seconds, 5),
        "seconds": matrix,
    }})
    assert os.path.exists(path)

"""Importable benchmark helpers.

Lives in its own module (rather than ``conftest.py``) so benchmark files can
``from bench_utils import run_once`` without relying on the ambiguous
``conftest`` module name, which collides with ``tests/conftest.py`` in a
whole-repo pytest run.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Dict, Optional


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive experiment driver exactly once under the benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


#: Environment variable overriding where :func:`write_bench_json` puts its
#: artifact (CI points it at the workspace root so the upload step finds it).
BENCH_JSON_DIR_ENV_VAR = "KH_CORE_BENCH_JSON_DIR"


def write_bench_json(filename: str, payload: Dict[str, object],
                     directory: Optional[str] = None) -> str:
    """Write a machine-readable benchmark artifact; returns its path.

    ``payload`` is augmented with a reproducibility header (timestamp,
    interpreter, platform, CPU count, quick-mode flag) so a perf trajectory
    assembled from successive artifacts can normalize across environments.
    The directory defaults to the current working directory, overridable via
    :data:`BENCH_JSON_DIR_ENV_VAR`.

    Repeated calls for the same file *merge* top-level keys instead of
    overwriting, so several benchmark tests can contribute sections to one
    artifact regardless of execution order.
    """
    directory = (directory
                 or os.environ.get(BENCH_JSON_DIR_ENV_VAR)
                 or os.getcwd())
    path = os.path.join(directory, filename)
    record: Dict[str, object] = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            record = {}
    record.update(payload)
    record["meta"] = {
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "quick_mode": os.environ.get("KH_CORE_BENCH_QUICK", "")
        not in ("", "0"),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path

"""Importable benchmark helpers.

Lives in its own module (rather than ``conftest.py``) so benchmark files can
``from bench_utils import run_once`` without relying on the ambiguous
``conftest`` module name, which collides with ``tests/conftest.py`` in a
whole-repo pytest run.
"""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive experiment driver exactly once under the benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)

"""Benchmark: regenerate Figure 3 (fraction of vertices per (k,h)-core)."""

from bench_utils import run_once

from repro.experiments import figure3_core_sizes
from repro.experiments.common import ExperimentConfig


def test_figure3_regeneration(benchmark):
    config = ExperimentConfig(scale="tiny", h_values=(1, 2, 3),
                              datasets=("caAs", "FBco"))
    rows = run_once(benchmark, figure3_core_sizes.run, config)
    assert len(rows) == 6
    for row in rows:
        series = [row[key] for key in row if str(key).startswith("k/C^=")]
        assert series == sorted(series, reverse=True)


def test_core_sizes_kernel(benchmark, social_graph):
    from repro.core import core_decomposition
    decomposition = core_decomposition(social_graph, 2)
    sizes = benchmark(decomposition.core_sizes)
    assert sizes[0] == social_graph.num_vertices

"""Benchmark: regenerate Figure 4 (distribution of normalized core indices)."""

from bench_utils import run_once

from repro.experiments import figure4_core_distribution
from repro.experiments.common import ExperimentConfig


def test_figure4_regeneration(benchmark):
    config = ExperimentConfig(scale="tiny", h_values=(1, 2, 3),
                              datasets=("caAs",))
    rows = run_once(benchmark, figure4_core_distribution.run, config)
    assert len(rows) == 3
    for row in rows:
        bins = [row[key] for key in row if str(key).startswith("(")]
        assert abs(sum(bins) - 1.0) < 0.05


def test_normalized_core_index_kernel(benchmark, collaboration_graph):
    from repro.core import core_decomposition
    decomposition = core_decomposition(collaboration_graph, 2)
    normalized = benchmark(decomposition.normalized_core_index)
    assert max(normalized.values()) == 1.0

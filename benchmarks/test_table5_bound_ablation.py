"""Benchmark: Table 5 — effect of each bound on running time (ablation)."""

from bench_utils import run_once

from repro.core import h_lb, h_lb_ub
from repro.experiments import table5_bound_ablation
from repro.experiments.common import ExperimentConfig


def test_table5_regeneration(benchmark):
    config = ExperimentConfig(scale="tiny", h_values=(2,),
                              datasets=("caHe", "rnPA"))
    rows = run_once(benchmark, table5_bound_ablation.run, config)
    assert len(rows) == 2
    expected_columns = {"no LB (s)", "LB1 (s)", "LB2 (s)", "h-degree UB (s)", "UB (s)"}
    assert expected_columns <= set(rows[0])


def test_h_lb_with_lb1_only_kernel(benchmark, collaboration_graph):
    result = benchmark(h_lb, collaboration_graph, 2, use_lb1_only=True)
    assert result.degeneracy > 0


def test_h_lb_ub_with_hdegree_bound_kernel(benchmark, collaboration_graph):
    result = benchmark(h_lb_ub, collaboration_graph, 2, use_hdegree_as_upper_bound=True)
    assert result.degeneracy > 0

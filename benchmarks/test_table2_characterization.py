"""Benchmark: regenerate Table 2 (max core index / number of distinct cores)."""

from bench_utils import run_once

from repro.core import core_decomposition
from repro.experiments import table2_characterization
from repro.experiments.common import ExperimentConfig


def test_table2_regeneration(benchmark):
    config = ExperimentConfig(scale="tiny", h_values=(1, 2, 3),
                              datasets=("coli", "cele", "jazz", "caHe"))
    rows = run_once(benchmark, table2_characterization.run, config)
    assert len(rows) == 4
    for row in rows:
        first = int(row["h=1"].split("/")[0])
        last = int(row["h=3"].split("/")[0])
        assert last >= first  # the maximum core index grows with h


def test_characterization_kernel_h3(benchmark, collaboration_graph):
    decomposition = benchmark(core_decomposition, collaboration_graph, 3)
    assert decomposition.degeneracy > 0

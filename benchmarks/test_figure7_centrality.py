"""Benchmark: Figure 7 — closeness centrality vs core index."""

from bench_utils import run_once

from repro.experiments import figure7_centrality
from repro.experiments.common import ExperimentConfig
from repro.traversal.centrality import closeness_centrality


def test_figure7_regeneration(benchmark):
    config = ExperimentConfig(scale="tiny", datasets=("caAs",), h_values=(1, 2, 3))
    rows = run_once(benchmark, figure7_centrality.run, config)
    assert len(rows) == 3
    # The paper's observation: the correlation strengthens as h grows.
    assert rows[-1]["spearman(closeness, core)"] >= rows[0]["spearman(closeness, core)"] - 0.2


def test_closeness_kernel(benchmark, collaboration_graph):
    values = benchmark(closeness_centrality, collaboration_graph)
    assert len(values) == collaboration_graph.num_vertices

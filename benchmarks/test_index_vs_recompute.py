"""Benchmark: index-served queries vs recomputation, refresh vs rebuild.

The persistent index trades one up-front spectrum build for repeated
queries at table-read cost.  This benchmark measures both sides of that
trade on a collaboration-network stand-in and records them in
``BENCH_PR7.json`` (via :func:`bench_utils.write_bench_json`, so CI uploads
the artifact):

1. **Repeated query classes** — point core-number lookups, full vertex
   spectra and membership thresholds, answered (a) from the index and
   (b) by from-scratch decomposition of the current graph, per query.
   Asserted: the index is at least ``MIN_QUERY_SPEEDUP``× faster per
   query on every class.
2. **Small update batches** — a local-churn deletion stream applied
   (a) through :class:`IndexRefresher` (dirty-row rewrites riding the
   dynamic engine) and (b) by rebuilding the whole index per batch.
   Asserted: incremental refresh is at least ``MIN_REFRESH_SPEEDUP``×
   faster.  The stream deletes edges whose endpoints have the smallest
   h-balls — updates with provably local effect, the regime incremental
   refresh is designed for (the refresher's staleness fallback covers
   batches that dirty too much of the index; see
   ``docs/architecture.md``).

Set ``KH_CORE_BENCH_QUICK=1`` to shrink the graph and the query volume.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import core_decomposition
from repro.datasets import load_dataset
from repro.index import CoreIndexReader, IndexRefresher, build_index
from repro.traversal.bfs import h_bounded_neighbors

from bench_utils import write_bench_json  # noqa: E402

ARTIFACT = "BENCH_PR7.json"
H_VALUES = (1, 2, 3)

QUICK = os.environ.get("KH_CORE_BENCH_QUICK", "") not in ("", "0")

SCALE = "tiny" if QUICK else "small"
#: The refresh leg uses the road-network stand-in: heterogeneous shells
#: with a quiet periphery, so screened deletions stay local while a
#: rebuild always pays the full spectrum.
REFRESH_SCALE = "small" if QUICK else "medium"
INDEX_QUERY_REPS = 50 if QUICK else 200
RECOMPUTE_REPS = 3 if QUICK else 5
NUM_BATCHES = 3 if QUICK else 6
BATCH_SIZE = 4

#: Acceptance floors.  Real ratios are orders of magnitude larger (a point
#: lookup is one SQLite PK probe vs a full peel); the floors only guard
#: against the index accidentally degenerating into recomputation.
MIN_QUERY_SPEEDUP = 10.0
MIN_REFRESH_SPEEDUP = 2.0


def _xdist_guard():
    if os.environ.get("PYTEST_XDIST_WORKER"):
        pytest.skip("wall-clock ratios are meaningless under xdist")


def benchmark_graph():
    return load_dataset("caHe", scale=SCALE, seed=0)


def _timed(fn, reps):
    """Mean seconds per call over ``reps`` calls (first call included)."""
    started = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - started) / reps


def _pick_vertices(graph, count):
    vertices = sorted(graph.vertices(), key=repr)
    step = max(1, len(vertices) // count)
    return vertices[::step][:count]


def test_index_queries_beat_recomputation(tmp_path):
    """Per-query speedup of index reads over from-scratch peels."""
    _xdist_guard()
    graph = benchmark_graph()
    path = str(tmp_path / "bench.khidx")
    build_started = time.perf_counter()
    report = build_index(graph, path, h_values=H_VALUES)
    build_seconds = time.perf_counter() - build_started

    probes = _pick_vertices(graph, 8)
    k_probe = max(1, report.degeneracies[2] - 1)

    with CoreIndexReader(path) as reader:
        def index_points():
            for v in probes:
                reader.core_number(v, 2)

        def index_spectra():
            for v in probes:
                reader.spectrum(v)

        def index_thresholds():
            for v in probes:
                reader.membership_threshold(v, k_probe)

        index_seconds = {
            "core_number": _timed(index_points, INDEX_QUERY_REPS),
            "spectrum": _timed(index_spectra, INDEX_QUERY_REPS),
            "membership_threshold": _timed(index_thresholds,
                                           INDEX_QUERY_REPS),
        }

    # The honest no-index baseline: every query class peels from scratch.
    def recompute_points():
        cores = core_decomposition(graph, 2).core_index
        for v in probes:
            cores[v]

    def recompute_spectra():
        layers = {h: core_decomposition(graph, h).core_index
                  for h in H_VALUES}
        for v in probes:
            [(h, layers[h][v]) for h in H_VALUES]

    def recompute_thresholds():
        for v in probes:
            for h in H_VALUES:
                if core_decomposition(graph, h).core_index[v] >= k_probe:
                    break

    recompute_seconds = {
        "core_number": _timed(recompute_points, RECOMPUTE_REPS),
        "spectrum": _timed(recompute_spectra, RECOMPUTE_REPS),
        "membership_threshold": _timed(recompute_thresholds,
                                       RECOMPUTE_REPS),
    }

    speedups = {kind: recompute_seconds[kind] / index_seconds[kind]
                for kind in index_seconds}
    for kind, speedup in speedups.items():
        assert speedup >= MIN_QUERY_SPEEDUP, (
            f"{kind}: index only {speedup:.1f}x faster than recomputation "
            f"(floor {MIN_QUERY_SPEEDUP}x)")

    write_bench_json(ARTIFACT, {
        "index_queries": {
            "graph": {"dataset": "caHe", "scale": SCALE,
                      "vertices": graph.num_vertices,
                      "edges": graph.num_edges},
            "h_values": list(H_VALUES),
            "build_seconds": round(build_seconds, 6),
            "queries_per_rep": len(probes),
            "per_rep_seconds": {
                "index": {k: round(v, 9) for k, v in index_seconds.items()},
                "recompute": {k: round(v, 9)
                              for k, v in recompute_seconds.items()},
            },
            "speedup": {k: round(v, 1) for k, v in speedups.items()},
            "floor": MIN_QUERY_SPEEDUP,
        },
    })


def _local_churn_deletions(graph, count):
    """Deterministic deletion stream with provably local effect.

    Scores every edge by the summed h-ball size of its endpoints (h = the
    largest persisted threshold) and deletes the ``count`` most peripheral
    ones.  The repeel universe of a deletion is bounded by the dirty
    region around those balls, so these are exactly the updates the
    incremental path resolves in O(region) instead of O(graph).
    """
    h = max(H_VALUES)
    balls = {v: len(h_bounded_neighbors(graph, v, h))
             for v in graph.vertices()}
    scored = sorted(((balls[u] + balls[v], (u, v))
                     for u, v in graph.edges()),
                    key=lambda item: (item[0], repr(item[1])))
    return [("-", u, v) for _, (u, v) in scored[:count]]


def test_incremental_refresh_beats_rebuild(tmp_path):
    """Small batches: dirty-row refresh vs whole-index rebuild."""
    _xdist_guard()
    graph = load_dataset("rnPA", scale=REFRESH_SCALE, seed=0)
    updates = _local_churn_deletions(graph, NUM_BATCHES * BATCH_SIZE)
    batches = [updates[i:i + BATCH_SIZE]
               for i in range(0, len(updates), BATCH_SIZE)]

    incremental_path = str(tmp_path / "incremental.khidx")
    build_index(graph.copy(), incremental_path, h_values=H_VALUES)
    started = time.perf_counter()
    dirty_rows = 0
    with IndexRefresher(incremental_path, staleness_ratio=1.0) as refresher:
        for batch in batches:
            summary = refresher.apply_batch(batch)
            assert summary.mode in ("incremental", "noop")
            dirty_rows += summary.dirty_rows
    incremental_seconds = time.perf_counter() - started

    # Baseline: after every batch, rebuild the entire index from the
    # updated graph (what a store without incremental refresh must do).
    rebuild_path = str(tmp_path / "rebuild.khidx")
    replay = graph.copy()
    started = time.perf_counter()
    for batch in batches:
        for op, u, v in batch:
            replay.remove_edge(u, v)
        build_index(replay.copy(), rebuild_path, h_values=H_VALUES,
                    overwrite=True)
    rebuild_seconds = time.perf_counter() - started

    # Both paths must land on the same final state.
    with CoreIndexReader(incremental_path) as incremental, \
            CoreIndexReader(rebuild_path) as rebuilt:
        for h in H_VALUES:
            assert incremental.core_map(h) == rebuilt.core_map(h)

    speedup = rebuild_seconds / incremental_seconds
    assert speedup >= MIN_REFRESH_SPEEDUP, (
        f"incremental refresh only {speedup:.1f}x faster than per-batch "
        f"rebuild (floor {MIN_REFRESH_SPEEDUP}x)")

    write_bench_json(ARTIFACT, {
        "refresh_vs_rebuild": {
            "graph": {"dataset": "rnPA", "scale": REFRESH_SCALE,
                      "vertices": graph.num_vertices,
                      "edges": graph.num_edges},
            "h_values": list(H_VALUES),
            "batches": len(batches),
            "batch_size": BATCH_SIZE,
            "workload": "local-churn deletions (smallest endpoint h-balls)",
            "dirty_rows": dirty_rows,
            "incremental_seconds": round(incremental_seconds, 6),
            "rebuild_seconds": round(rebuild_seconds, 6),
            "speedup": round(speedup, 1),
            "floor": MIN_REFRESH_SPEEDUP,
        },
    })

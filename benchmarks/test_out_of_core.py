"""Benchmark: out-of-core storage tier — bounded-RSS loads, mmap overhead.

Measures the two claims the storage tier makes and records them in
``BENCH_PR8.json`` (via :func:`bench_utils.write_bench_json`, so CI uploads
the artifact):

1. **Bounded-RSS streaming load** — an edge file whose CSR payload is at
   least ``MIN_PAYLOAD_FACTOR``× the configured RAM budget is built by
   ``kh-core load`` in a child process.  Asserted: the child's peak RSS
   beyond an import-only baseline stays within the budget plus a fixed
   Python allowance, independent of graph size — and far below what
   materializing the same graph in RAM costs (measured in a third child).
   Load throughput (lines/s, edges/s) rides along in the artifact.
2. **mmap-vs-RAM decomposition overhead** — the same snapshot decomposed
   through a ``RamCSRStorage`` and a ``MmapCSRStorage`` backend.  Asserted:
   cores and removal orders are identical and the mmap wall-clock overhead
   stays under ``MAX_MMAP_OVERHEAD``×.

Set ``KH_CORE_BENCH_QUICK=1`` to shrink the graphs and the budgets.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import time

import pytest

from repro.core import core_decomposition
from repro.datasets import load_dataset
from repro.graph import FrozenGraphView
from repro.graph.csr import CSRGraph
from repro.graph.storage import estimated_payload_bytes

from bench_utils import write_bench_json  # noqa: E402

ARTIFACT = "BENCH_PR8.json"

QUICK = os.environ.get("KH_CORE_BENCH_QUICK", "") not in ("", "0")

#: Bounded-RSS leg.  The chain edges guarantee ids ``0..n-1`` all occur, so
#: the block gets identity labels and reopening it costs O(1) RAM — the
#: measurement isolates the *build*, not label materialization.
LOAD_VERTICES = 60_000 if QUICK else 300_000
LOAD_EDGES = 300_000 if QUICK else 1_200_000
LOAD_BUDGET = (512 * 1024) if QUICK else (2 * 1024 * 1024)

#: Acceptance floors/ceilings.
MIN_PAYLOAD_FACTOR = 10.0
#: Fixed Python-side costs that do not scale with the input: run-writer
#: buffers, the bounded merge fan-in's file handles, allocator slack.
#: Measured extra RSS is ~4 MiB at both benchmark sizes.
PYTHON_FIXED_ALLOWANCE = 12 * 1024 * 1024
#: The streaming build must beat an in-RAM ``read_edge_list`` of the same
#: file by at least this factor on peak extra RSS.
MIN_RAM_ADVANTAGE = 4.0
MAX_MMAP_OVERHEAD = 3.0

OVERHEAD_SCALE = "small" if QUICK else "medium"
OVERHEAD_REPS = 3 if QUICK else 5
H_VALUES = (1, 2)


def _xdist_guard():
    if os.environ.get("PYTEST_XDIST_WORKER"):
        pytest.skip("wall-clock and RSS readings are meaningless under xdist")


def _child_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _child_rss_kb(code: str) -> int:
    """Peak RSS (KiB) of a child process running ``code``; it must print
    ``ru_maxrss`` as its last stdout line."""
    result = subprocess.run([sys.executable, "-c", code],
                            capture_output=True, text=True, env=_child_env(),
                            check=True)
    return int(result.stdout.strip().splitlines()[-1])


def _write_edge_file(path: str, n: int, m: int, seed: int = 0) -> None:
    """Chain 0..n-1 (forces identity labels) plus random extra edges."""
    rng = random.Random(seed)
    with open(path, "w") as handle:
        for i in range(n - 1):
            handle.write(f"{i} {i + 1}\n")
        for _ in range(m - n + 1):
            handle.write(f"{rng.randrange(n)} {rng.randrange(n)}\n")


def test_streaming_load_rss_stays_within_budget(tmp_path):
    _xdist_guard()
    source = str(tmp_path / "big.edges")
    _write_edge_file(source, LOAD_VERTICES, LOAD_EDGES)
    out = str(tmp_path / "big.khcsr")

    baseline_kb = _child_rss_kb(
        "import repro.cli, resource\n"
        "print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)")

    started = time.perf_counter()
    result = subprocess.run(
        [sys.executable, "-m", "repro", "load", source, "--out", out,
         "--max-ram-bytes", str(LOAD_BUDGET), "--json"],
        capture_output=True, text=True, env=_child_env(), check=True)
    elapsed = time.perf_counter() - started
    stats = json.loads(result.stdout)

    payload = estimated_payload_bytes(stats["vertices"], stats["edges"])
    assert stats["identity_labels"], "chain edges must force identity labels"
    assert payload >= MIN_PAYLOAD_FACTOR * LOAD_BUDGET, (
        f"graph too small for the claim: payload {payload} vs "
        f"budget {LOAD_BUDGET}")

    extra = (stats["max_rss_kb"] - baseline_kb) * 1024
    cap = LOAD_BUDGET + PYTHON_FIXED_ALLOWANCE
    assert extra <= cap, (
        f"streaming load RSS exceeded its budget: extra "
        f"{extra / 2**20:.1f} MiB > cap {cap / 2**20:.1f} MiB")

    # The same file materialized as an in-RAM dict graph, for contrast.
    ram_kb = _child_rss_kb(
        "import resource\n"
        "from repro.graph import read_edge_list\n"
        f"graph = read_edge_list({source!r})\n"
        "assert graph.num_edges > 0\n"
        "print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)")
    ram_extra = (ram_kb - baseline_kb) * 1024
    # The measured extra can round down to ~0 KiB (the loader's overhead is
    # that small); compare against at least one full budget so the advantage
    # ratio stays meaningful.
    extra_floor = max(extra, LOAD_BUDGET)
    assert ram_extra >= MIN_RAM_ADVANTAGE * extra_floor, (
        f"streaming build should be far leaner than in-RAM loading: "
        f"{extra / 2**20:.1f} MiB vs {ram_extra / 2**20:.1f} MiB")

    write_bench_json(ARTIFACT, {"streaming_load": {
        "vertices": stats["vertices"],
        "edges": stats["edges"],
        "lines": stats["lines"],
        "budget_bytes": LOAD_BUDGET,
        "payload_bytes": payload,
        "payload_over_budget": payload / LOAD_BUDGET,
        "spill_runs": stats["spill_runs"],
        "external_relabel": stats["external_relabel"],
        "seconds": elapsed,
        "lines_per_second": stats["lines"] / elapsed,
        "edges_per_second": stats["edges"] / elapsed,
        "extra_rss_bytes": extra,
        "in_ram_extra_rss_bytes": ram_extra,
        "rss_advantage": ram_extra / extra_floor,
    }})


def test_mmap_decomposition_matches_ram_and_stays_cheap(tmp_path):
    _xdist_guard()
    graph = load_dataset("caHe", scale=OVERHEAD_SCALE, seed=0)
    ram = CSRGraph.from_graph(graph, storage="ram")
    mmap_csr = CSRGraph.from_graph(
        graph, storage="mmap", storage_dir=str(tmp_path))
    try:
        section = {"dataset": "caHe", "scale": OVERHEAD_SCALE,
                   "vertices": graph.num_vertices,
                   "edges": graph.num_edges}
        for h in H_VALUES:
            results = {}
            timings = {}
            for tag, csr in (("ram", ram), ("mmap", mmap_csr)):
                view = FrozenGraphView(csr)
                started = time.perf_counter()
                for _ in range(OVERHEAD_REPS):
                    result = core_decomposition(view, h=h)
                timings[tag] = (time.perf_counter() - started) / OVERHEAD_REPS
                results[tag] = result
            assert (results["ram"].core_index
                    == results["mmap"].core_index), f"h={h}: cores diverge"
            assert (results["ram"].removal_order
                    == results["mmap"].removal_order), (
                f"h={h}: removal orders diverge")
            ratio = timings["mmap"] / timings["ram"]
            assert ratio <= MAX_MMAP_OVERHEAD, (
                f"h={h}: mmap decomposition {ratio:.2f}x slower than RAM")
            section[f"h{h}"] = {"ram_seconds": timings["ram"],
                                "mmap_seconds": timings["mmap"],
                                "mmap_overhead": ratio}
        write_bench_json(ARTIFACT, {"mmap_vs_ram": section})
    finally:
        mmap_csr.close()

"""Micro-benchmark: dict backend vs CSR backend on the synthetic generators.

Runs the baseline h-BZ algorithm — the most BFS-bound of the three paper
algorithms, so the one where the graph representation dominates — on graphs
from three generator families, with both backends, and reports the measured
speedup.  The acceptance bar (see docs/architecture.md) is a >= 2x speedup
for CSR h-BZ on the largest graph of the battery; the speedup is asserted,
not assumed, so a regression in the array BFS fails this test rather than
silently eroding the backend's reason to exist.

The smaller graphs are reported for visibility only: locally-sparse
topologies (grids, ring-of-cliques) have tiny BFS frontiers where Python's
per-call overhead dominates both backends and the CSR advantage shrinks to
~1.5x.  The hub-heavy preferential-attachment graph is where the flat-array
layout pays off, and is deliberately the largest entry.
"""

from __future__ import annotations

import time

import pytest

from repro.core import h_bz
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    relaxed_caveman_graph,
)

H = 2

#: (name, graph builder) — ordered by size; the last entry is the largest
#: graph and carries the speedup assertion.
BATTERY = [
    ("ER(600, p=4/n)", lambda: erdos_renyi_graph(600, 4 / 600, seed=0)),
    ("caveman(60, 8)", lambda: relaxed_caveman_graph(60, 8, 0.1, seed=0)),
    ("BA(1200, 3)", lambda: barabasi_albert_graph(1200, 3, seed=0)),
]

#: Required CSR-over-dict speedup for h-BZ on the largest battery graph.
REQUIRED_SPEEDUP = 2.0


def _time_once(function) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


@pytest.mark.parametrize("name,builder", BATTERY[:-1],
                         ids=[name for name, _ in BATTERY[:-1]])
def test_backends_agree_and_csr_not_slower(name, builder):
    """Smaller generator graphs: identical cores, CSR at least on par."""
    graph = builder()
    dict_seconds = _time_once(lambda: h_bz(graph, H, backend="dict"))
    csr_seconds = _time_once(lambda: h_bz(graph, H, backend="csr"))
    dict_result = h_bz(graph, H, backend="dict")
    csr_result = h_bz(graph, H, backend="csr")
    assert csr_result.core_index == dict_result.core_index
    speedup = dict_seconds / csr_seconds if csr_seconds else float("inf")
    print(f"\n{name}: |V|={graph.num_vertices} |E|={graph.num_edges} "
          f"dict={dict_seconds:.3f}s csr={csr_seconds:.3f}s "
          f"speedup={speedup:.2f}x")
    # Generous bound: this guards against the CSR path regressing to
    # *slower* than the reference, not against timer noise.
    assert csr_seconds < dict_seconds * 1.5


def test_csr_speedup_on_largest_synthetic_graph():
    """h-BZ with the CSR backend must be >= 2x faster on the largest graph."""
    name, builder = BATTERY[-1]
    graph = builder()
    # Warm both paths once (first-touch allocation, branch caches), then take
    # the best of two timed rounds per backend to shave scheduler noise.
    h_bz(graph, H, backend="csr")
    dict_seconds = min(_time_once(lambda: h_bz(graph, H, backend="dict"))
                       for _ in range(2))
    csr_seconds = min(_time_once(lambda: h_bz(graph, H, backend="csr"))
                      for _ in range(2))
    speedup = dict_seconds / csr_seconds if csr_seconds else float("inf")
    print(f"\n{name}: |V|={graph.num_vertices} |E|={graph.num_edges} "
          f"dict={dict_seconds:.3f}s csr={csr_seconds:.3f}s "
          f"speedup={speedup:.2f}x (required: {REQUIRED_SPEEDUP}x)")
    assert h_bz(graph, H, backend="csr").core_index == \
        h_bz(graph, H, backend="dict").core_index
    assert speedup >= REQUIRED_SPEEDUP, (
        f"CSR h-BZ speedup degraded to {speedup:.2f}x on {name} "
        f"(required >= {REQUIRED_SPEEDUP}x)"
    )

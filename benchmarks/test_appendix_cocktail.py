"""Benchmark: Appendix B — distance-generalized cocktail party queries."""

from bench_utils import run_once

from repro.applications.community import cocktail_party
from repro.core import core_decomposition
from repro.experiments import appendix_cocktail_party
from repro.experiments.common import ExperimentConfig
from repro.traversal.components import largest_component


def test_cocktail_party_regeneration(benchmark):
    config = ExperimentConfig(scale="tiny", datasets=("caHe",), h_values=(2,))
    rows = run_once(benchmark, appendix_cocktail_party.run, config)
    assert rows
    assert all(row["community size"] >= row["|Q|"] for row in rows)


def test_cocktail_party_kernel(benchmark, social_graph):
    component = sorted(largest_component(social_graph), key=repr)
    query = component[:2]
    decomposition = core_decomposition(social_graph, 2)
    result = benchmark(cocktail_party, social_graph, query, 2, decomposition)
    assert set(query) <= result.vertices

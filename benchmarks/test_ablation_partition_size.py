"""Ablation benchmark: the partition-size parameter S of h-LB+UB (Algorithm 4).

S controls how many consecutive distinct upper-bound values each top-down
partition covers.  Small S means more, smaller partitions (more ImproveLB
cleaning passes, tighter LB3); large S approaches a single partition (h-LB
with an upper-bound-filtered vertex set).  The paper fixes S as an input
parameter without sweeping it; this ablation documents its effect on the
reproduction substrate.
"""

import pytest

from repro.core import h_lb_ub


@pytest.mark.parametrize("partition_size", [1, 2, 4, 8])
def test_partition_size_ablation(benchmark, collaboration_graph, partition_size):
    result = benchmark.pedantic(
        h_lb_ub, args=(collaboration_graph, 3),
        kwargs={"partition_size": partition_size},
        rounds=2, iterations=1, warmup_rounds=0)
    assert result.degeneracy > 0


def test_partition_size_does_not_change_the_result(collaboration_graph):
    """Not a timing benchmark: S affects cost only, never the decomposition."""
    reference = h_lb_ub(collaboration_graph, 3, partition_size=1).core_index
    for partition_size in (2, 4, 8):
        assert h_lb_ub(collaboration_graph, 3,
                       partition_size=partition_size).core_index == reference

"""Benchmark: Figure 5 — h-LB+UB runtime on snowball samples of growing size."""

from bench_utils import run_once

from repro.core import h_lb_ub
from repro.datasets import load_dataset
from repro.experiments import figure5_scalability
from repro.experiments.common import ExperimentConfig
from repro.graph.sampling import snowball_sample


def test_figure5_regeneration(benchmark):
    config = ExperimentConfig(scale="tiny", h_values=(2,))
    config.extra["sample_sizes"] = (25, 50, 100)
    config.extra["samples_per_size"] = 2
    rows = run_once(benchmark, figure5_scalability.run, config)
    assert len(rows) == 3
    times = [row["mean time (s)"] for row in rows]
    # Larger samples should not be (meaningfully) cheaper than smaller ones.
    assert times[-1] >= times[0] * 0.5


def test_snowball_sampling_kernel(benchmark):
    base = load_dataset("lj", scale="tiny", seed=0)
    sample = benchmark(snowball_sample, base, 60, 1)
    assert sample.num_vertices == 60


def test_h_lb_ub_on_sample_kernel(benchmark):
    base = load_dataset("lj", scale="tiny", seed=0)
    sample = snowball_sample(base, 80, seed=1)
    result = benchmark(h_lb_ub, sample, 2)
    assert result.degeneracy > 0

"""Benchmark: Figure 5 — scalability on snowball samples and across cores.

Two claims are asserted, not assumed:

1. **Runtime grows with sample size** (the paper's Figure 5 series).
2. **The process executor with 4 workers is >= 2x faster than the serial
   bulk h-degree pass** on a machine with >= 4 cores — the §4.6
   parallelization finally measured with real cores instead of GIL-bound
   threads.  The speedup test is skipped on boxes with fewer cores and
   under pytest-xdist (several test processes already saturate the CPUs,
   so wall-clock ratios stop meaning anything); CI runs it in the
   dedicated non-xdist benchmark step with ``KH_CORE_BENCH_QUICK=1``.
"""

import os
import statistics
import time

import pytest
from bench_utils import run_once

from repro.core import h_lb_ub
from repro.core.backends import CSREngine
from repro.datasets import load_dataset
from repro.experiments import figure5_scalability
from repro.experiments.common import ExperimentConfig
from repro.graph.generators import barabasi_albert_graph
from repro.graph.sampling import snowball_sample

QUICK = os.environ.get("KH_CORE_BENCH_QUICK", "") not in ("", "0")

#: Size of the Barabási–Albert graph for the process-speedup benchmark and
#: the distance threshold of its bulk pass (h = 3 makes the per-vertex BFS
#: expensive enough that chunk dispatch overhead is amortized).
SPEEDUP_GRAPH_SIZE = 2500 if QUICK else 5000
SPEEDUP_H = 3
SPEEDUP_WORKERS = 4
REQUIRED_PROCESS_SPEEDUP = 2.0


def test_figure5_regeneration(benchmark):
    config = ExperimentConfig(scale="tiny", h_values=(2,))
    config.extra["sample_sizes"] = (25, 50, 100)
    config.extra["samples_per_size"] = 2
    rows = run_once(benchmark, figure5_scalability.run, config)
    assert len(rows) == 3
    times = [row["mean time (s)"] for row in rows]
    # Larger samples should not be (meaningfully) cheaper than smaller ones.
    assert times[-1] >= times[0] * 0.5


def test_figure5b_executor_scaling_regeneration(benchmark):
    """Regenerate the executor-scaling table (timing artifact for CI)."""
    config = ExperimentConfig(scale="tiny", h_values=(2,))
    config.extra["executors"] = ("serial", "thread", "process")
    config.extra["worker_counts"] = (2,)
    config.extra["scaling_sample_size"] = 80 if QUICK else 200
    config.extra["repeats"] = 1
    rows = run_once(benchmark, figure5_scalability.run_executor_scaling,
                    config)
    print("\nexecutor scaling (cores=%s):" % (os.cpu_count() or 1))
    for row in rows:
        print(f"  {row['executor']:>7} x{row['workers']}: "
              f"{row['time (s)']:.4f}s  speedup={row['speedup']}")
    assert {row["executor"] for row in rows} == \
        {"serial", "thread", "process"}


def test_snowball_sampling_kernel(benchmark):
    base = load_dataset("lj", scale="tiny", seed=0)
    sample = benchmark(snowball_sample, base, 60, 1)
    assert sample.num_vertices == 60


def test_h_lb_ub_on_sample_kernel(benchmark):
    base = load_dataset("lj", scale="tiny", seed=0)
    sample = snowball_sample(base, 80, seed=1)
    result = benchmark(h_lb_ub, sample, 2)
    assert result.degeneracy > 0


def _bulk_seconds(engine, executor, workers, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        engine.bulk_h_degrees(SPEEDUP_H, num_threads=workers,
                              executor=executor)
        best = min(best, time.perf_counter() - start)
    return best


def test_process_pool_beats_serial_bulk_pass():
    """Process executor with 4 workers must be >= 2x serial (>= 4 cores)."""
    cores = os.cpu_count() or 1
    if cores < SPEEDUP_WORKERS:
        pytest.skip(f"needs >= {SPEEDUP_WORKERS} cores, have {cores}")
    if os.environ.get("PYTEST_XDIST_WORKER"):
        pytest.skip("wall-clock speedups are meaningless under xdist")

    graph = barabasi_albert_graph(SPEEDUP_GRAPH_SIZE, 3, seed=0)
    engine = CSREngine(graph)
    try:
        serial_seconds = _bulk_seconds(engine, "serial", 1)
        serial_result = engine.bulk_h_degrees(SPEEDUP_H)

        # Warm the pool and the shared-memory export before timing.
        engine.bulk_h_degrees(SPEEDUP_H, targets=range(16),
                              num_threads=SPEEDUP_WORKERS,
                              executor="process")
        process_seconds = _bulk_seconds(engine, "process", SPEEDUP_WORKERS)
        process_result = engine.bulk_h_degrees(
            SPEEDUP_H, num_threads=SPEEDUP_WORKERS, executor="process")
    finally:
        engine.close()

    speedup = serial_seconds / process_seconds if process_seconds \
        else float("inf")
    print(f"\n|V|={graph.num_vertices} h={SPEEDUP_H} "
          f"serial={serial_seconds * 1000:.0f}ms "
          f"process(x{SPEEDUP_WORKERS})={process_seconds * 1000:.0f}ms "
          f"speedup={speedup:.2f}x "
          f"(required: {REQUIRED_PROCESS_SPEEDUP}x, cores={cores})")

    assert process_result == serial_result
    assert speedup >= REQUIRED_PROCESS_SPEEDUP, (
        f"process executor with {SPEEDUP_WORKERS} workers degraded to "
        f"{speedup:.2f}x over serial "
        f"(required >= {REQUIRED_PROCESS_SPEEDUP}x)"
    )


def test_thread_pool_documents_gil_ceiling():
    """The legacy thread path must stay *correct*; no speedup is claimed.

    This pins the motivation for the process engine: whatever the thread
    pool measures, its results are identical to serial.  (Median used so a
    noisy scheduler cannot flake the equality check's companion timing.)
    """
    graph = barabasi_albert_graph(400, 3, seed=1)
    engine = CSREngine(graph)
    try:
        serial = engine.bulk_h_degrees(2)
        durations = []
        for _ in range(3):
            start = time.perf_counter()
            threaded = engine.bulk_h_degrees(2, num_threads=4,
                                             executor="thread")
            durations.append(time.perf_counter() - start)
        assert threaded == serial
        assert statistics.median(durations) > 0
    finally:
        engine.close()

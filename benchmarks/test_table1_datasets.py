"""Benchmark: regenerate Table 1 (dataset characteristics)."""

from bench_utils import run_once

from repro.experiments import table1_datasets
from repro.graph.stats import summarize


def test_table1_regeneration(benchmark, tiny_config):
    rows = run_once(benchmark, table1_datasets.run, tiny_config)
    assert len(rows) == 13
    assert all(row["|V|"] > 0 for row in rows)


def test_table1_summary_kernel(benchmark, collaboration_graph):
    summary = benchmark(summarize, collaboration_graph, "caHe")
    assert summary.num_vertices == collaboration_graph.num_vertices

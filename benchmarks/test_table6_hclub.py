"""Benchmark: Table 6 — maximum h-club with and without the core wrapper."""

from bench_utils import run_once

from repro.applications.hclub import DBCSolver, ITDBCSolver, maximum_h_club_with_core
from repro.core import core_decomposition
from repro.experiments import table6_hclub
from repro.experiments.common import ExperimentConfig


def test_table6_regeneration(benchmark):
    config = ExperimentConfig(scale="tiny", h_values=(2,),
                              datasets=("amzn", "rnPA", "rnTX"),
                              hclub_time_budget_seconds=10.0)
    rows = run_once(benchmark, table6_hclub.run, config)
    assert len(rows) == 3
    assert all(row["max h-club size"] != "NT" for row in rows)


def test_standalone_itdbc_kernel(benchmark, road_graph):
    result = benchmark(ITDBCSolver(time_budget_seconds=30.0).solve, road_graph, 2)
    assert result.optimal


def test_wrapped_dbc_kernel(benchmark, road_graph):
    decomposition = core_decomposition(road_graph, 2)
    result = benchmark(maximum_h_club_with_core, road_graph, 2,
                       DBCSolver(time_budget_seconds=30.0), decomposition)
    assert result.optimal


def test_wrapper_and_standalone_agree(road_graph):
    """Not a timing benchmark: the wrapper must find the same optimum."""
    standalone = ITDBCSolver(time_budget_seconds=30.0).solve(road_graph, 2)
    wrapped = maximum_h_club_with_core(road_graph, 2,
                                       solver=ITDBCSolver(time_budget_seconds=30.0))
    assert standalone.optimal and wrapped.optimal
    assert standalone.size == wrapped.size

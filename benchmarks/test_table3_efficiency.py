"""Benchmark: Table 3 — the head-to-head of h-BZ vs h-LB vs h-LB+UB.

This is the paper's central efficiency comparison, so in addition to the
one-shot table regeneration the three algorithm kernels are benchmarked
individually on the same (dataset, h) cell; pytest-benchmark's comparison
output then directly shows the ordering the paper reports.
"""

from bench_utils import run_once

from repro.core import h_bz, h_lb, h_lb_ub
from repro.experiments import table3_efficiency
from repro.experiments.common import ExperimentConfig
from repro.instrumentation import Counters


def test_table3_regeneration(benchmark):
    config = ExperimentConfig(scale="tiny", h_values=(2,),
                              datasets=("caHe", "caAs", "rnPA"))
    rows = run_once(benchmark, table3_efficiency.run, config)
    assert len(rows) == 3
    for row in rows:
        assert row["h-LB visits"] <= row["h-BZ visits"]


def test_h_bz_kernel_h2(benchmark, collaboration_graph):
    result = benchmark(h_bz, collaboration_graph, 2)
    assert result.degeneracy > 0


def test_h_lb_kernel_h2(benchmark, collaboration_graph):
    result = benchmark(h_lb, collaboration_graph, 2)
    assert result.degeneracy > 0


def test_h_lb_ub_kernel_h2(benchmark, collaboration_graph):
    result = benchmark(h_lb_ub, collaboration_graph, 2)
    assert result.degeneracy > 0


def test_h_bz_kernel_h3(benchmark, collaboration_graph):
    benchmark.pedantic(h_bz, args=(collaboration_graph, 3), rounds=1, iterations=1)


def test_h_lb_kernel_h3(benchmark, collaboration_graph):
    benchmark.pedantic(h_lb, args=(collaboration_graph, 3), rounds=1, iterations=1)


def test_h_lb_ub_kernel_h3(benchmark, collaboration_graph):
    benchmark.pedantic(h_lb_ub, args=(collaboration_graph, 3), rounds=1, iterations=1)


def test_visit_counts_ordering(collaboration_graph):
    """Not a timing benchmark: assert the 'visits' ordering of Table 3."""
    bz_counters, lb_counters = Counters(), Counters()
    h_bz(collaboration_graph, 2, counters=bz_counters)
    h_lb(collaboration_graph, 2, counters=lb_counters)
    assert lb_counters.vertices_visited < bz_counters.vertices_visited
